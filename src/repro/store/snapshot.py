"""Stable read views over the updatable store.

A :class:`StoreSnapshot` freezes one consistent state of the store — the run
list, the tombstone set and a consolidated copy of the live memtable buffer —
and serves every query path against it.  Snapshots are cheap (runs and the
tombstone array are immutable, so they are captured by reference; only the
small memtable tail is copied) and remain valid while the store keeps
ingesting, flushing and compacting underneath.

Every query fans out across the segments (memtable + runs) through the
:class:`~repro.query.engine.ProbeEngine` backends and merges the partial
results with the fused ``np.add.at`` / ``np.bincount`` aggregation:

* :meth:`count_in_ranges` / :meth:`raster_count` — each run answers through
  its sorted code array (minus an exact tombstone correction), the memtable
  through a code array encoded on the fly; integer partial counts sum
  exactly.
* :meth:`act_join` — each segment's points probe the ACT index through
  :meth:`ProbeEngine.probe_act_pairs`; the match pairs are tagged with
  global insertion ids, merged into ascending-id order and aggregated with
  one unbuffered scatter-add.  Because the pair sequence equals the one a
  single probe over the live point set (in insertion order) produces, the
  float aggregates are **bit-identical** to a from-scratch rebuild — the
  store's core correctness contract.
* :meth:`estimate_count_range` — the uniform-raster coverage counts are
  integers per segment and sum exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.geometry.point import PointSet
from repro.index.sorted_array import SortedCodeArray
from repro.obs import trace
from repro.query.engine import get_engine
from repro.query.join_mm import JoinResult
from repro.query.range_estimation import coverage_counts, range_from_counts
from repro.query.spec import AggregationQuery
from repro.store.run import Run, encode_points_at

__all__ = ["StoreSnapshot"]


class StoreSnapshot:
    """One frozen, queryable state of a :class:`~repro.store.store.SpatialStore`."""

    __slots__ = (
        "frame",
        "level",
        "runs",
        "deleted_ids",
        "mem_ids",
        "mem_xs",
        "mem_ys",
        "mem_values",
        "_mem_index",
        "_run_live",
        "_run_dead_positions",
        "_segment_cache",
        "_registry",
    )

    def __init__(
        self,
        frame,
        level: int,
        runs: tuple[Run, ...],
        deleted_ids: np.ndarray,
        mem_ids: np.ndarray,
        mem_xs: np.ndarray,
        mem_ys: np.ndarray,
        mem_values: dict[str, np.ndarray],
        registry=None,
    ) -> None:
        self.frame = frame
        self.level = level
        self.runs = runs
        self.deleted_ids = deleted_ids
        self.mem_ids = mem_ids
        self.mem_xs = mem_xs
        self.mem_ys = mem_ys
        self.mem_values = mem_values
        self._mem_index: SortedCodeArray | None = None
        self._run_live: dict[int, np.ndarray] = {}
        self._run_dead_positions: dict[int, np.ndarray] = {}
        self._segment_cache = None
        # Optional IndexRegistry (shared with the owning store / a dataset):
        # act_join fetches its polygon index through it instead of building
        # one per call.
        self._registry = registry

    # ------------------------------------------------------------------ #
    # segment plumbing
    # ------------------------------------------------------------------ #
    def _live_mask(self, run_pos: int) -> np.ndarray:
        """Cached tombstone-survivor mask of one run."""
        mask = self._run_live.get(run_pos)
        if mask is None:
            mask = self.runs[run_pos].live_mask(self.deleted_ids)
            self._run_live[run_pos] = mask
        return mask

    def _dead_positions(self, run_pos: int) -> np.ndarray:
        """Sorted positions of tombstoned entries in a run's sorted code view."""
        dead = self._run_dead_positions.get(run_pos)
        if dead is None:
            dead = self.runs[run_pos].dead_code_positions(self._live_mask(run_pos))
            self._run_dead_positions[run_pos] = dead
        return dead

    def _memtable_index(self) -> SortedCodeArray | None:
        """Code index over the snapshot's in-frame memtable points (cached)."""
        if self._mem_index is None:
            if self.mem_ids.shape[0] == 0:
                return None
            in_frame = self.frame.contains_points(self.mem_xs, self.mem_ys)
            codes = encode_points_at(
                self.frame, self.level, self.mem_xs[in_frame], self.mem_ys[in_frame]
            )
            self._mem_index = SortedCodeArray(np.sort(codes), assume_sorted=True)
        return self._mem_index

    def _segments(
        self,
    ) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray]]]":
        """Live ``(ids, xs, ys, values)`` arrays of every segment, runs first.

        Cached: a snapshot is a serving handle that typically answers many
        queries, and the tombstone-filtered gathers are O(live points).
        """
        if self._segment_cache is not None:
            return self._segment_cache
        segments = []
        for pos, run in enumerate(self.runs):
            mask = self._live_mask(pos)
            if not mask.any():
                continue
            segments.append(
                (
                    run.ids[mask],
                    run.xs[mask],
                    run.ys[mask],
                    {name: col[mask] for name, col in run.values.items()},
                )
            )
        if self.mem_ids.shape[0]:
            segments.append((self.mem_ids, self.mem_xs, self.mem_ys, self.mem_values))
        self._segment_cache = segments
        return segments

    # ------------------------------------------------------------------ #
    # point-set views
    # ------------------------------------------------------------------ #
    @property
    def num_live(self) -> int:
        """Number of live points visible to this snapshot."""
        total = int(self.mem_ids.shape[0])
        for pos in range(len(self.runs)):
            total += int(np.count_nonzero(self._live_mask(pos)))
        return total

    def live_ids(self) -> np.ndarray:
        """Sorted insertion ids of every live point."""
        chunks = [run.ids[self._live_mask(pos)] for pos, run in enumerate(self.runs)]
        chunks.append(self.mem_ids)
        return np.sort(np.concatenate(chunks))

    def live_points(self) -> PointSet:
        """The live point set in ascending insertion-id order.

        This is the canonical point order of the store: a from-scratch
        rebuild ingests exactly this set in exactly this order, which is why
        every snapshot query is bit-identical to the rebuild.
        """
        segments = self._segments()
        if not segments:
            return PointSet(
                np.empty(0), np.empty(0), {name: np.empty(0) for name in self.mem_values}
            )
        ids = np.concatenate([seg[0] for seg in segments])
        xs = np.concatenate([seg[1] for seg in segments])
        ys = np.concatenate([seg[2] for seg in segments])
        order = np.argsort(ids, kind="stable")
        values = {
            name: np.concatenate([seg[3][name] for seg in segments])[order]
            for name in self.mem_values
        }
        return PointSet(xs[order], ys[order], values)

    # ------------------------------------------------------------------ #
    # query paths
    # ------------------------------------------------------------------ #
    def count_in_ranges(self, ranges, engine=None) -> int:
        """Total live points whose cell code falls in the ``[lo, hi)`` ranges.

        Each run is probed through the chosen engine's range-count path over
        its immutable sorted code array; tombstoned entries are subtracted
        with an exact positional correction (two binary searches over the
        run's dead positions per range).  The memtable contributes through a
        code array encoded at query time.  All partials are integers, so the
        fan-out sums to exactly the count a single consolidated code array
        would report.
        """
        probe_engine = get_engine(engine)
        total = 0
        for pos, run in enumerate(self.runs):
            total += probe_engine.count_ranges(run.index, ranges)
            total -= self._dead_in_ranges(pos, ranges)
        mem_index = self._memtable_index()
        if mem_index is not None:
            total += probe_engine.count_ranges(mem_index, ranges)
        return int(total)

    def _dead_in_ranges(self, run_pos: int, ranges) -> int:
        """Tombstoned entries of one run inside the query ranges."""
        dead_pos = self._dead_positions(run_pos)
        if dead_pos.shape[0] == 0:
            return 0
        ranges_arr = np.asarray(ranges, dtype=np.uint64).reshape(-1, 2)
        codes = self.runs[run_pos].codes
        los = np.searchsorted(codes, ranges_arr[:, 0], side="left")
        his = np.searchsorted(codes, ranges_arr[:, 1], side="left")
        return int(
            (np.searchsorted(dead_pos, his) - np.searchsorted(dead_pos, los)).sum()
        )

    def raster_count(
        self,
        region,
        cells_per_polygon: int,
        conservative: bool = True,
        engine=None,
        build_engine=None,
    ) -> int:
        """Approximate count of live points in ``region`` via query cells.

        The polygon decomposes into key ranges at the store's linearization
        level exactly as in :func:`repro.query.containment.raster_count`;
        the ranges then hit every segment through :meth:`count_in_ranges`.
        """
        from repro.approx.hierarchical_raster import HierarchicalRasterApproximation

        approx = HierarchicalRasterApproximation.from_cell_budget(
            region,
            self.frame,
            max_cells=cells_per_polygon,
            conservative=conservative,
            max_level=self.level,
            engine=build_engine,
        )
        return self.count_in_ranges(approx.query_ranges(self.level), engine=engine)

    def act_join(
        self,
        regions,
        epsilon: float = 4.0,
        query: AggregationQuery | None = None,
        trie=None,
        engine=None,
        build_engine=None,
    ) -> JoinResult:
        """Approximate ACT aggregation join over the snapshot's live points.

        The probe phase fans out: every segment probes the polygon index
        through the engine's pair path, tagging matches with global insertion
        ids.  The pairs are then merged into ascending-id order and
        aggregated with one unbuffered ``np.add.at`` — the same additions, in
        the same order, as one probe pass over :meth:`live_points`, so the
        aggregates match a from-scratch rebuild bit for bit on both engines.

        When no prebuilt ``trie`` is passed, the polygon index comes from
        the snapshot's :class:`~repro.api.registry.IndexRegistry` (shared
        with the owning store): one build serves every join over an
        unchanged store, and the store invalidates the cache on flush /
        compaction.
        """
        from repro.approx.build_engine import get_build_engine

        query = query or AggregationQuery()
        probe_engine = get_engine(engine)
        builder = get_build_engine(build_engine)

        with trace.timed("snapshot.build", runs=len(self.runs)) as build_span:
            built_here = trie is None
            registry_hit = False
            if built_here:
                if self._registry is not None:
                    misses_before = self._registry.stats.misses
                    trie = self._registry.act_index(
                        regions, self.frame, epsilon=epsilon, build_engine=builder
                    )
                    built_here = self._registry.stats.misses > misses_before
                    registry_hit = not built_here
                else:
                    trie = builder.load_act(regions, self.frame, epsilon=epsilon)
            index_memory = trie.memory_bytes()
            if probe_engine.name == "vectorized":
                flat = trie.flattened()
                if flat is not trie:
                    index_memory += flat.memory_bytes()
        build_seconds = build_span.seconds

        with trace.timed("snapshot.probe", runs=len(self.runs)) as probe_phase:
            num_regions = len(regions)
            id_chunks: list[np.ndarray] = []
            pid_chunks: list[np.ndarray] = []
            val_chunks: list[np.ndarray] = []
            probes = 0
            for segment_pos, (ids, xs, ys, values) in enumerate(self._segments()):
                with trace.span("segment.probe", segment=segment_pos):
                    points = PointSet(xs, ys, values)
                    if query.point_filter is not None:
                        mask = np.asarray(query.point_filter(points), dtype=bool)
                        if mask.shape[0] != len(points):
                            raise QueryError(
                                "point_filter must return one boolean per point"
                            )
                        points = points.select(mask)
                        ids = ids[mask]
                    vals = query.values(points)
                    offsets, pids = probe_engine.probe_act_pairs(
                        trie, points.xs, points.ys
                    )
                    probes += len(points)
                    if pids.shape[0] == 0:
                        continue
                    point_idx = np.repeat(
                        np.arange(len(points), dtype=np.int64), np.diff(offsets)
                    )
                    id_chunks.append(ids[point_idx])
                    pid_chunks.append(pids)
                    val_chunks.append(vals[point_idx])

            with trace.span("snapshot.scatter"):
                sums = np.zeros(num_regions, dtype=np.float64)
                counts = np.zeros(num_regions, dtype=np.int64)
                if pid_chunks:
                    pair_ids = np.concatenate(id_chunks)
                    pair_pids = np.concatenate(pid_chunks)
                    pair_vals = np.concatenate(val_chunks)
                    # Merge the per-segment pair streams into ascending
                    # insertion-id order (stable, so each point's
                    # coarse-to-fine match order survives); the scatter-add
                    # then replays the exact addition sequence of a
                    # single-probe pass over the live point set.
                    order = np.argsort(pair_ids, kind="stable")
                    pair_pids = pair_pids[order]
                    np.add.at(sums, pair_pids, pair_vals[order])
                    counts = np.bincount(pair_pids, minlength=num_regions).astype(
                        np.int64
                    )
        probe_seconds = probe_phase.seconds

        return JoinResult(
            aggregates=query.finalize(sums, counts),
            counts=counts,
            pip_tests=0,
            index_probes=probes,
            build_seconds=build_seconds,
            probe_seconds=probe_seconds,
            index_memory_bytes=index_memory,
            engine=probe_engine.name,
            build_engine=builder.name if built_here else "",
            extra={
                "num_cells": trie.num_cells,
                "epsilon": epsilon,
                "num_runs": len(self.runs),
                "memtable_points": int(self.mem_ids.shape[0]),
                "registry_hit": registry_hit,
            },
        )

    def estimate_count_range(self, region, epsilon: float):
        """Certain result interval for the COUNT of live points in ``region``.

        One conservative uniform-raster approximation is built per query; the
        coverage counts fan out over the segments and sum exactly (they are
        integers over disjoint point subsets).
        """
        from repro.approx.uniform_raster import UniformRasterApproximation

        if epsilon <= 0:
            raise QueryError("epsilon must be positive")
        approx = UniformRasterApproximation(region, epsilon=epsilon, conservative=True)
        alpha = 0
        beta = 0
        for _, xs, ys, _ in self._segments():
            a, b = coverage_counts(approx, xs, ys)
            alpha += a
            beta += b
        return range_from_counts(float(alpha), float(beta))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StoreSnapshot(runs={len(self.runs)}, memtable={self.mem_ids.shape[0]}, "
            f"tombstones={self.deleted_ids.shape[0]})"
        )
