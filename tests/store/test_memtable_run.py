"""Unit tests for the store's building blocks: MemTable and Run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store import MemTable, Run, SizeTieredCompaction, encode_points_at


def _batch(rng, frame, n, id_start=0):
    side = frame.size
    ids = np.arange(id_start, id_start + n, dtype=np.int64)
    xs = frame.origin_x + rng.uniform(0, side, n)
    ys = frame.origin_y + rng.uniform(0, side, n)
    values = {"w": rng.uniform(0, 10, n)}
    return ids, xs, ys, values


class TestMemTable:
    def test_append_and_live_arrays_preserve_insertion_order(self, rng, frame):
        mt = MemTable(("w",))
        ids1, xs1, ys1, v1 = _batch(rng, frame, 5, id_start=0)
        ids2, xs2, ys2, v2 = _batch(rng, frame, 3, id_start=5)
        mt.append(ids1, xs1, ys1, v1)
        mt.append(ids2, xs2, ys2, v2)
        ids, xs, ys, values = mt.live_arrays()
        np.testing.assert_array_equal(ids, np.arange(8))
        np.testing.assert_array_equal(xs, np.concatenate([xs1, xs2]))
        np.testing.assert_array_equal(values["w"], np.concatenate([v1["w"], v2["w"]]))
        assert len(mt) == 8
        assert mt.num_live == 8

    def test_schema_mismatch_rejected(self, rng, frame):
        mt = MemTable(("w",))
        ids, xs, ys, _ = _batch(rng, frame, 3)
        with pytest.raises(StoreError):
            mt.append(ids, xs, ys, {"other": np.zeros(3)})

    def test_delete_local_drops_from_live_arrays(self, rng, frame):
        mt = MemTable(("w",))
        ids, xs, ys, values = _batch(rng, frame, 6)
        mt.append(ids, xs, ys, values)
        newly = mt.delete_local(np.array([1, 4], dtype=np.int64))
        assert newly == 2
        # Deleting again is idempotent.
        assert mt.delete_local(np.array([1], dtype=np.int64)) == 0
        live_ids, live_xs, _, live_values = mt.live_arrays()
        np.testing.assert_array_equal(live_ids, [0, 2, 3, 5])
        np.testing.assert_array_equal(live_xs, xs[[0, 2, 3, 5]])
        np.testing.assert_array_equal(live_values["w"], values["w"][[0, 2, 3, 5]])
        assert mt.num_live == 4

    def test_live_arrays_are_snapshots(self, rng, frame):
        """Arrays handed out before further appends must not change."""
        mt = MemTable(("w",))
        ids, xs, ys, values = _batch(rng, frame, 4)
        mt.append(ids, xs, ys, values)
        snap_ids, _, _, _ = mt.live_arrays()
        more = _batch(rng, frame, 4, id_start=4)
        mt.append(*more)
        mt.delete_local(np.array([0], dtype=np.int64))
        np.testing.assert_array_equal(snap_ids, np.arange(4))

    def test_clear_resets_tail(self, rng, frame):
        mt = MemTable(("w",))
        mt.append(*_batch(rng, frame, 4))
        mt.clear(next_first_id=4)
        assert len(mt) == 0
        assert mt.first_id == 4
        ids, xs, ys, values = mt.live_arrays()
        assert ids.shape == (0,) and xs.shape == (0,)
        assert values["w"].shape == (0,)


class TestRunLayout:
    def test_canonical_order(self, rng, frame, store_level):
        """Rows in ascending id order; code view sorted with id tie-break."""
        ids, xs, ys, values = _batch(rng, frame, 500)
        perm = rng.permutation(500)
        run = Run.build(frame, store_level, ids[perm], xs[perm], ys[perm],
                        {"w": values["w"][perm]})
        assert run.num_in_frame == 500
        np.testing.assert_array_equal(run.ids, np.sort(ids))
        # codes sorted; within equal codes the mapped rows' ids ascend.
        assert (np.diff(run.codes.astype(np.int64)) >= 0).all()
        same_code = run.codes[1:] == run.codes[:-1]
        assert (np.diff(run.ids[run.code_rows])[same_code] > 0).all()
        # The layout is independent of the input permutation.
        run2 = Run.build(frame, store_level, ids, xs, ys, values)
        np.testing.assert_array_equal(run.ids, run2.ids)
        np.testing.assert_array_equal(run.xs, run2.xs)
        np.testing.assert_array_equal(run.code_rows, run2.code_rows)
        np.testing.assert_array_equal(run.values["w"], run2.values["w"])

    def test_out_of_frame_points_excluded_from_codes(self, rng, frame, store_level):
        ids, xs, ys, values = _batch(rng, frame, 20)
        xs[3] = frame.origin_x - 1000.0
        ys[7] = frame.origin_y + frame.size + 1000.0
        run = Run.build(frame, store_level, ids, xs, ys, values)
        assert len(run) == 20
        assert run.num_in_frame == 18
        assert run.codes.shape == (18,)
        # The code view maps to every row except the out-of-frame ones.
        assert set(run.code_rows.tolist()) == set(range(20)) - {3, 7}
        # Out-of-frame rows stay in the row arrays (joins still see them).
        np.testing.assert_array_equal(run.ids, np.arange(20))

    def test_codes_match_frame_linearization(self, rng, frame, store_level):
        ids, xs, ys, values = _batch(rng, frame, 100)
        run = Run.build(frame, store_level, ids, xs, ys, values)
        expected = np.sort(frame.points_to_codes(xs, ys, store_level))
        np.testing.assert_array_equal(run.codes, expected)
        # code_rows really is the permutation: codes == encode(rows)[code_rows].
        np.testing.assert_array_equal(
            run.codes, frame.points_to_codes(run.xs, run.ys, store_level)[run.code_rows]
        )

    def test_flush_path_keeps_row_arrays_unpermuted(self, rng, frame, store_level):
        """Id-ordered input (the flush hot path) is stored as-is — the code
        view is the only thing sorted."""
        ids, xs, ys, values = _batch(rng, frame, 64)
        run = Run.build(frame, store_level, ids, xs, ys, values)
        np.testing.assert_array_equal(run.xs, xs)
        np.testing.assert_array_equal(run.ys, ys)
        np.testing.assert_array_equal(run.values["w"], values["w"])

    def test_dead_code_positions(self, rng, frame, store_level):
        ids, xs, ys, values = _batch(rng, frame, 60)
        run = Run.build(frame, store_level, ids, xs, ys, values)
        deleted = np.array([4, 31], dtype=np.int64)
        positions = run.dead_code_positions(run.live_mask(deleted))
        assert positions.shape == (2,)
        assert (np.diff(positions) > 0).all()
        assert set(run.ids[run.code_rows[positions]].tolist()) == {4, 31}

    def test_encode_points_at_matches_points_to_codes(self, rng, frame, store_level):
        _, xs, ys, _ = _batch(rng, frame, 200)
        np.testing.assert_array_equal(
            encode_points_at(frame, store_level, xs, ys),
            frame.points_to_codes(xs, ys, store_level),
        )

    def test_live_mask(self, rng, frame, store_level):
        ids, xs, ys, values = _batch(rng, frame, 50)
        run = Run.build(frame, store_level, ids, xs, ys, values)
        deleted = np.array([5, 17, 999], dtype=np.int64)
        mask = run.live_mask(deleted)
        assert mask.sum() == 48
        assert set(run.ids[~mask].tolist()) == {5, 17}

    def test_shape_mismatch_rejected(self, frame, store_level):
        with pytest.raises(StoreError):
            Run.build(frame, store_level, np.arange(3), np.zeros(2), np.zeros(3), {})


class TestRunMerge:
    def test_merge_bit_identical_to_from_scratch(self, rng, frame, store_level):
        """Consolidating k runs == building one run over their live union."""
        ids, xs, ys, values = _batch(rng, frame, 900)
        parts = np.array_split(rng.permutation(900), 3)
        runs = [
            Run.build(frame, store_level, ids[p], xs[p], ys[p], {"w": values["w"][p]})
            for p in parts
        ]
        deleted = np.sort(rng.choice(900, size=120, replace=False)).astype(np.int64)
        masks = [run.live_mask(deleted) for run in runs]
        merged = Run.merge(runs, masks)

        keep = np.ones(900, dtype=bool)
        keep[deleted] = False
        scratch = Run.build(
            frame, store_level, ids[keep], xs[keep], ys[keep], {"w": values["w"][keep]}
        )
        np.testing.assert_array_equal(merged.ids, scratch.ids)
        np.testing.assert_array_equal(merged.codes, scratch.codes)
        np.testing.assert_array_equal(merged.code_rows, scratch.code_rows)
        np.testing.assert_array_equal(merged.xs, scratch.xs)
        np.testing.assert_array_equal(merged.ys, scratch.ys)
        np.testing.assert_array_equal(merged.values["w"], scratch.values["w"])
        assert merged.num_in_frame == scratch.num_in_frame

    def test_merge_zero_runs_rejected(self):
        with pytest.raises(StoreError):
            Run.merge([], [])


class TestSizeTieredPolicy:
    def test_selects_fullest_small_tier(self):
        policy = SizeTieredCompaction(min_runs=2, tier_base=4.0)
        sizes = [100, 110, 5000]

        class FakeRun:
            def __init__(self, n):
                self.n = n

            def __len__(self):
                return self.n

        positions = policy.select([FakeRun(n) for n in sizes])
        assert positions == [0, 1]

    def test_stable_below_threshold(self):
        policy = SizeTieredCompaction(min_runs=4, tier_base=4.0)

        class FakeRun:
            def __len__(self):
                return 100

        assert policy.select([FakeRun(), FakeRun()]) is None

    def test_parameter_validation(self):
        with pytest.raises(StoreError):
            SizeTieredCompaction(min_runs=1)
        with pytest.raises(StoreError):
            SizeTieredCompaction(tier_base=1.0)
