"""Quickstart: distance-bounded approximate spatial aggregation in a few lines.

The script builds a small synthetic city (taxi-like pickup points plus
neighborhood-like regions), wraps it in the public `SpatialDataset` facade,
and runs the same COUNT(*) aggregation query with

* the exact reference join,
* the plan the optimizer picks for a 4 m distance bound (the ACT join —
  no point-in-polygon tests),
* the Bounded Raster Join on the simulated GPU (distance bound 10 m),

and prints the per-region counts side by side together with the error the
distance bound permitted.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AggregationQuery, NYCWorkload, SpatialDataset
from repro.bench import print_table
from repro.query import exact_join_reference, median_relative_error


def main() -> None:
    # A synthetic city; one facade session owns the frame, the points, the
    # polygon suite and the polygon-index cache.
    workload = NYCWorkload(seed=7)
    points = workload.taxi_points(50_000)
    regions = workload.neighborhoods(count=16)
    dataset = SpatialDataset(
        points,
        frame=workload.frame(),
        extent=workload.extent,
        suites={"neighborhoods": regions},
    )

    print(f"{len(points):,} taxi-like points, {len(regions)} neighborhood-like regions")

    exact = exact_join_reference(points, regions)
    planned = dataset.query(AggregationQuery(epsilon=4.0))  # optimizer's pick
    brj = dataset.query(AggregationQuery(epsilon=10.0), strategy="brj")

    print()
    print(planned.explain())

    rows = []
    for region_id in range(len(regions)):
        rows.append(
            [
                region_id,
                int(exact.counts[region_id]),
                int(planned.counts[region_id]),
                int(brj.counts[region_id]),
            ]
        )
    print_table(
        ["region", "exact count", f"{planned.strategy} (eps=4 m)", "BRJ (eps=10 m)"],
        rows,
        title="Per-region COUNT(*) under exact and distance-bounded evaluation",
    )

    # The natural choice can be any strategy (its result shape differs:
    # point-probe joins report probe_seconds, canvas joins wall_seconds).
    chosen = planned.result
    seconds = getattr(chosen, "probe_seconds", None) or getattr(chosen, "wall_seconds", 0.0)
    print()
    print(f"planned join: {seconds:.3f}s, {getattr(chosen, 'pip_tests', 0)} point-in-polygon tests")
    print(f"              median relative error {median_relative_error(chosen.counts, exact.counts):.3%}")
    print(f"BRJ join:     {brj.result.wall_seconds:.3f}s wall time on a "
          f"{brj.result.resolution[0]}x{brj.result.resolution[1]} canvas")
    print(f"              median relative error {median_relative_error(brj.counts, exact.counts):.3%}")
    print(f"Exact ref:    {exact.probe_seconds:.3f}s with {exact.pip_tests:,} point-in-polygon tests")


if __name__ == "__main__":
    main()
