"""Shared fixtures for the sharded scatter-gather suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Polygon


@pytest.fixture(scope="session")
def frame(workload):
    return workload.frame()


@pytest.fixture(scope="session")
def store_level() -> int:
    return 8


@pytest.fixture(scope="session")
def clustered_points(workload, rng):
    """Points packed into one corner tile — most shards end up empty."""
    n = 800
    xs = rng.uniform(10.0, 120.0, n)
    ys = rng.uniform(10.0, 120.0, n)
    from repro.geometry.point import PointSet

    return PointSet(xs, ys, {"fare": rng.uniform(1.0, 40.0, n)})


@pytest.fixture(scope="session")
def straddling_regions(workload):
    """Polygons crossing every tile boundary of small shard grids.

    A centered plus-shape and a near-extent rectangle both straddle the
    column/row cuts of 2-, 4- and 7-way tilings over the 1 km extent.
    """
    cross = Polygon(
        [
            (450.0, 100.0),
            (550.0, 100.0),
            (550.0, 450.0),
            (900.0, 450.0),
            (900.0, 550.0),
            (550.0, 550.0),
            (550.0, 900.0),
            (450.0, 900.0),
            (450.0, 550.0),
            (100.0, 550.0),
            (100.0, 450.0),
            (450.0, 450.0),
        ]
    )
    wide = Polygon([(50.0, 350.0), (950.0, 350.0), (950.0, 650.0), (50.0, 650.0)])
    return [cross, wide]


@pytest.fixture(scope="session")
def avg_query():
    from repro.query import AggregationQuery
    from repro.query.spec import Aggregate

    return AggregationQuery(epsilon=8.0, aggregate=Aggregate.AVG, attribute="fare")
