"""Tests for the minimal WKT reader / writer."""

from __future__ import annotations

import pytest

from repro.errors import GeometryError
from repro.geometry import MultiPolygon, Point, Polygon, from_wkt, to_wkt


class TestPointWkt:
    def test_roundtrip(self):
        p = Point(1.5, -2.0)
        assert from_wkt(to_wkt(p)) == p

    def test_parse_with_whitespace(self):
        p = from_wkt("  POINT (3 4) ")
        assert p == Point(3.0, 4.0)


class TestPolygonWkt:
    def test_roundtrip_simple(self, l_shape):
        parsed = from_wkt(to_wkt(l_shape))
        assert isinstance(parsed, Polygon)
        assert parsed.area == pytest.approx(l_shape.area)
        assert parsed.num_vertices == l_shape.num_vertices

    def test_roundtrip_with_hole(self, unit_square):
        parsed = from_wkt(to_wkt(unit_square))
        assert isinstance(parsed, Polygon)
        assert len(parsed.holes) == 1
        assert parsed.area == pytest.approx(unit_square.area)

    def test_parse_standard_text(self):
        poly = from_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
        assert isinstance(poly, Polygon)
        assert poly.area == pytest.approx(16.0)

    def test_malformed_rejected(self):
        with pytest.raises(GeometryError):
            from_wkt("POLYGON 0 0 1 1")


class TestMultiPolygonWkt:
    def test_roundtrip(self, unit_square, l_shape):
        multi = MultiPolygon([unit_square, l_shape.translated(30.0, 0.0)])
        parsed = from_wkt(to_wkt(multi))
        assert isinstance(parsed, MultiPolygon)
        assert len(parsed) == 2
        assert parsed.area == pytest.approx(multi.area)

    def test_unsupported_type(self):
        with pytest.raises(GeometryError):
            from_wkt("LINESTRING (0 0, 1 1)")

    def test_unsupported_geometry_serialisation(self):
        with pytest.raises(GeometryError):
            to_wkt(object())  # type: ignore[arg-type]
