"""Per-polygon content fingerprints and suite diffing.

Live polygon suites hinge on one primitive: a stable content hash of each
polygon, so that any layer — the index registry's cache keys, the serving
layer's coalescing keys, the store snapshot's index lookups — can decide
*what actually changed* without comparing geometry.  This module is the
single definition of that primitive (the three layers used to carry
near-identical private helpers):

* :func:`region_fingerprint` — blake2b over one region's ring coordinate
  bytes plus structural separators.  Any vertex, ring or part change moves
  the fingerprint; two regions built independently from the same
  coordinates share it.
* :func:`entry_fingerprints` / :func:`combine_fingerprints` /
  :func:`suite_fingerprint` — the per-entry fingerprints of a suite and
  their order-sensitive combination.  The suite fingerprint is derivable
  from the entry fingerprints alone, which is what lets a diff skip
  rehashing unchanged polygons.
* :func:`diff_suites` / :func:`removal_delta` — a :class:`SuiteDelta`
  between two fingerprint sequences: which positions were replaced, added
  or removed, and which were skipped as identical.  This is the delta-only
  push strategy (fingerprint each entry, skip identical, rebuild only
  changed) that drives patch-in-place index rebuilds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = [
    "SuiteDelta",
    "combine_fingerprints",
    "diff_suites",
    "entry_fingerprints",
    "region_fingerprint",
    "removal_delta",
    "suite_fingerprint",
]

Region = Polygon | MultiPolygon

#: Digest size in bytes; fingerprints are its hex rendering (32 chars).
_DIGEST_SIZE = 16


def _ring_arrays(region: Region):
    """Iterate over every ring coordinate array of a region."""
    polygons = region.polygons if isinstance(region, MultiPolygon) else (region,)
    for polygon in polygons:
        for ring in polygon.rings():
            yield ring.coords


def region_fingerprint(region: Region) -> str:
    """Content hash of one polygon / multipolygon (geometry-exact).

    Hashes every ring's float64 coordinate bytes plus structural
    separators, so the fingerprint changes whenever any vertex, ring or
    part changes — and only then.
    """
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    digest.update(b"R")
    for coords in _ring_arrays(region):
        digest.update(b"r")
        digest.update(coords.tobytes())
    return digest.hexdigest()


def entry_fingerprints(regions: Iterable[Region]) -> tuple[str, ...]:
    """Per-polygon content fingerprints of a suite, in suite order."""
    return tuple(region_fingerprint(region) for region in regions)


def combine_fingerprints(fingerprints: Sequence[str]) -> str:
    """Order-sensitive suite fingerprint from per-entry fingerprints.

    Hashes the entry count plus each entry digest, so reordering, adding or
    removing entries moves the suite fingerprint even when the entry set is
    unchanged.
    """
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    digest.update(len(fingerprints).to_bytes(8, "little"))
    for fingerprint in fingerprints:
        digest.update(bytes.fromhex(fingerprint))
    return digest.hexdigest()


def suite_fingerprint(regions: "Sequence[Region]") -> str:
    """Content hash of a polygon suite (order-sensitive, geometry-exact).

    Equal to ``combine_fingerprints(entry_fingerprints(regions))``: two
    suites built independently from the same coordinates share cached
    indexes, and any geometry or order change misses.
    """
    return combine_fingerprints(entry_fingerprints(regions))


@dataclass(frozen=True, slots=True)
class SuiteDelta:
    """What changed between two fingerprinted suites.

    Positions in :attr:`replaced` and :attr:`removed` refer to the **old**
    suite's numbering; :attr:`added` positions are the **new** suite's tail.
    Appliers run replace → remove → add, which keeps every position valid:
    diff-produced deltas only ever remove a tail, and explicit removal
    deltas (:func:`removal_delta`) carry no replacements or additions.
    """

    old_fingerprint: str
    new_fingerprint: str
    #: Positions present in both suites whose entry fingerprint changed.
    replaced: tuple[int, ...] = ()
    #: New-suite positions appended past the old suite's length.
    added: tuple[int, ...] = ()
    #: Old-suite positions dropped.
    removed: tuple[int, ...] = ()
    #: Positions whose entry fingerprint matched (skipped, never rebuilt).
    unchanged: int = 0

    @property
    def is_noop(self) -> bool:
        return not (self.replaced or self.added or self.removed)

    @property
    def num_changed(self) -> int:
        """Polygons a patch must touch (replaced + added + removed)."""
        return len(self.replaced) + len(self.added) + len(self.removed)

    def describe(self) -> str:
        return (
            f"replaced={len(self.replaced)} added={len(self.added)} "
            f"removed={len(self.removed)} unchanged={self.unchanged}"
        )


def diff_suites(
    old_fingerprints: Sequence[str], new_fingerprints: Sequence[str]
) -> SuiteDelta:
    """Positional diff of two suites' entry fingerprints.

    Compares position by position: identical fingerprints are skipped,
    differing ones become replacements, and a length difference becomes a
    tail addition or removal.  This is the ``apply_suite`` entrypoint's
    change detection — only the positions it reports ever get rebuilt.
    """
    common = min(len(old_fingerprints), len(new_fingerprints))
    replaced = tuple(
        i for i in range(common) if old_fingerprints[i] != new_fingerprints[i]
    )
    return SuiteDelta(
        old_fingerprint=combine_fingerprints(old_fingerprints),
        new_fingerprint=combine_fingerprints(new_fingerprints),
        replaced=replaced,
        added=tuple(range(len(old_fingerprints), len(new_fingerprints))),
        removed=tuple(range(len(new_fingerprints), len(old_fingerprints))),
        unchanged=common - len(replaced),
    )


def removal_delta(
    old_fingerprints: Sequence[str], positions: Iterable[int]
) -> SuiteDelta:
    """Delta removing arbitrary positions (not just a tail) from a suite.

    The positional diff cannot express a mid-suite removal without
    rebuilding everything behind it; this constructor can, because the
    index's dense-id renumbering handles the shift for free.
    """
    dropped = sorted(set(int(p) for p in positions))
    for position in dropped:
        if not 0 <= position < len(old_fingerprints):
            raise IndexError(
                f"remove position {position} out of range for a "
                f"{len(old_fingerprints)}-polygon suite"
            )
    survivors = [
        fp for i, fp in enumerate(old_fingerprints) if i not in set(dropped)
    ]
    return SuiteDelta(
        old_fingerprint=combine_fingerprints(old_fingerprints),
        new_fingerprint=combine_fingerprints(survivors),
        removed=tuple(dropped),
        unchanged=len(survivors),
    )
