"""Static point partitioning: route a point set onto a sharded frame.

The in-memory analogue of :class:`~repro.shard.store.ShardedStore` ingest
routing: one vectorized :meth:`~repro.shard.frame.ShardedFrame.route_points`
pass assigns every point a shard, a single stable argsort groups them, and
each shard keeps the **original row positions** as its global point ids.
Those positional ids are what makes the scatter-gather merge bit-exact —
sorting the merged match pairs by id replays the original point order, so
the fused aggregation adds in exactly the sequence the unsharded kernel
uses.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import PointSet
from repro.index.sorted_array import SortedCodeArray
from repro.shard.frame import ShardedFrame
from repro.shard.gather import ShardSegment

__all__ = ["ShardPart", "StaticShards", "partition_points"]


class ShardPart:
    """One shard's slice of a partitioned point set."""

    __slots__ = ("shard_id", "indices", "points")

    def __init__(self, shard_id: int, indices: np.ndarray, points: PointSet) -> None:
        self.shard_id = shard_id
        #: Original row positions — the global point ids of this shard.
        self.indices = indices
        self.points = points

    def __len__(self) -> int:
        return int(self.indices.shape[0])


def partition_points(points: PointSet, sharded_frame: ShardedFrame) -> list[ShardPart]:
    """Split ``points`` into per-shard parts (every shard present, maybe empty).

    Within a shard the original point order is preserved (stable grouping
    sort), so per-shard probes see points in the same relative order as the
    unsharded kernel.
    """
    routes = sharded_frame.route_points(points.xs, points.ys)
    order = np.argsort(routes, kind="stable")
    counts = np.bincount(routes, minlength=sharded_frame.num_shards)
    bounds = np.zeros(sharded_frame.num_shards + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    parts = []
    for shard_id in range(sharded_frame.num_shards):
        indices = order[bounds[shard_id] : bounds[shard_id + 1]]
        parts.append(ShardPart(shard_id, indices, points.select(indices)))
    return parts


class StaticShards:
    """A partitioned static dataset: parts plus lazy per-shard code indexes."""

    __slots__ = ("sharded_frame", "parts", "_code_indexes")

    def __init__(self, sharded_frame: ShardedFrame, parts: list[ShardPart]) -> None:
        self.sharded_frame = sharded_frame
        self.parts = parts
        self._code_indexes: dict[int, list] = {}

    @classmethod
    def build(cls, points: PointSet, frame, shards: int) -> "StaticShards":
        sharded_frame = ShardedFrame(frame, shards)
        return cls(sharded_frame, partition_points(points, sharded_frame))

    @property
    def num_shards(self) -> int:
        return self.sharded_frame.num_shards

    @property
    def frame(self):
        return self.sharded_frame.frame

    def segments(self) -> list[list[ShardSegment]]:
        """Probe-ready segments for :func:`repro.shard.gather.sharded_act_join`."""
        return [
            [
                ShardSegment(
                    part.indices,
                    part.points.xs,
                    part.points.ys,
                    {name: part.points.attribute(name) for name in part.points.attribute_names},
                )
            ]
            for part in self.parts
        ]

    def coords(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-shard coordinate blocks (for coverage fan-out)."""
        return [(part.points.xs, part.points.ys) for part in self.parts]

    def code_indexes(self, level: int) -> list:
        """Per-shard sorted code arrays at ``level`` (``None`` for empty shards).

        Built lazily once per level and cached — all points are encoded on
        the **global** frame, so the per-shard counts sum to exactly the
        unsharded :class:`~repro.query.containment.LinearizedPoints` count.
        """
        indexes = self._code_indexes.get(level)
        if indexes is None:
            frame = self.frame
            indexes = []
            for part in self.parts:
                xs, ys = part.points.xs, part.points.ys
                in_frame = frame.contains_points(xs, ys)
                if not in_frame.all():
                    xs, ys = xs[in_frame], ys[in_frame]
                if xs.shape[0] == 0:
                    indexes.append(None)
                    continue
                codes = frame.points_to_codes(xs, ys, level)
                indexes.append(SortedCodeArray(np.sort(codes), assume_sorted=True))
            self._code_indexes[level] = indexes
        return indexes
