"""Rotated Minimum Bounding Rectangle (RMBR) approximation.

The rotated MBR (Brinkhoff et al., referenced in §2.1) is the smallest-area
rectangle of arbitrary orientation that encloses the object.  It is computed
with rotating calipers over the convex hull: the minimum-area enclosing
rectangle always has one side collinear with a hull edge.
"""

from __future__ import annotations

import math

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.geometry.bbox import BoundingBox
from repro.geometry.convex_hull import convex_hull
from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = ["RotatedMBRApproximation", "minimum_area_rectangle"]


def minimum_area_rectangle(coords: np.ndarray) -> tuple[np.ndarray, float]:
    """Minimum-area enclosing rectangle of a point set.

    Returns
    -------
    (corners, angle):
        ``corners`` is a ``(4, 2)`` array of rectangle corners in CCW order;
        ``angle`` is the rotation (radians) of the rectangle's first edge.
    """
    hull = convex_hull(coords)
    n = hull.shape[0]
    best_area = math.inf
    best_corners = None
    best_angle = 0.0
    for i in range(n):
        edge = hull[(i + 1) % n] - hull[i]
        angle = math.atan2(edge[1], edge[0])
        cos_a, sin_a = math.cos(-angle), math.sin(-angle)
        rot = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
        rotated = hull @ rot.T
        min_x, min_y = rotated.min(axis=0)
        max_x, max_y = rotated.max(axis=0)
        area = (max_x - min_x) * (max_y - min_y)
        if area < best_area:
            best_area = area
            inv = np.array([[cos_a, sin_a], [-sin_a, cos_a]])
            corners_rotated = np.array(
                [[min_x, min_y], [max_x, min_y], [max_x, max_y], [min_x, max_y]]
            )
            best_corners = corners_rotated @ inv.T
            best_angle = angle
    assert best_corners is not None  # n >= 3 guaranteed by convex_hull
    return best_corners, best_angle


class RotatedMBRApproximation(GeometricApproximation):
    """Minimum-area rotated rectangle enclosing a region."""

    distance_bounded = False

    __slots__ = ("corners", "angle", "_center", "_half_u", "_half_v", "_axis_u", "_axis_v")

    def __init__(self, region: Polygon | MultiPolygon) -> None:
        if isinstance(region, MultiPolygon):
            coords = np.vstack([p.exterior.coords for p in region])
        else:
            coords = region.exterior.coords
        self.corners, self.angle = minimum_area_rectangle(coords)
        # Precompute the oriented-box frame for fast containment tests.
        self._center = self.corners.mean(axis=0)
        u = self.corners[1] - self.corners[0]
        v = self.corners[3] - self.corners[0]
        self._half_u = float(np.linalg.norm(u)) / 2.0
        self._half_v = float(np.linalg.norm(v)) / 2.0
        self._axis_u = u / (2.0 * self._half_u) if self._half_u > 0 else np.array([1.0, 0.0])
        self._axis_v = v / (2.0 * self._half_v) if self._half_v > 0 else np.array([0.0, 1.0])

    def covers_point(self, x: float, y: float) -> bool:
        d = np.array([x, y]) - self._center
        proj_u = abs(float(d @ self._axis_u))
        proj_v = abs(float(d @ self._axis_v))
        tol = 1e-9
        return proj_u <= self._half_u + tol and proj_v <= self._half_v + tol

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs, ys = as_point_arrays(xs, ys)
        d = np.column_stack([xs, ys]) - self._center
        proj_u = np.abs(d @ self._axis_u)
        proj_v = np.abs(d @ self._axis_v)
        tol = 1e-9
        return (proj_u <= self._half_u + tol) & (proj_v <= self._half_v + tol)

    def bounds(self) -> BoundingBox:
        return BoundingBox.from_points(self.corners[:, 0], self.corners[:, 1])

    @property
    def area(self) -> float:
        return 4.0 * self._half_u * self._half_v

    def memory_bytes(self) -> int:
        # Centre, two half extents, angle: 5 float64 values plus corners cache.
        return 5 * 8 + self.corners.size * 8

    @property
    def name(self) -> str:
        return "RotatedMBR"
