"""Tests for the hierarchical raster approximation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx import HierarchicalRasterApproximation, UniformRasterApproximation
from repro.data import noisy_convex_polygon
from repro.errors import ApproximationError
from repro.geometry import BoundingBox, MultiPolygon, Polygon, hausdorff_points, sample_boundary
from repro.grid import GridFrame
from repro.query import max_distance_to_boundary


@pytest.fixture(scope="module")
def frame() -> GridFrame:
    return GridFrame(BoundingBox(0.0, 0.0, 100.0, 100.0))


@pytest.fixture(scope="module")
def blob() -> Polygon:
    return noisy_convex_polygon(50.0, 50.0, 18.0, 22, seed=11)


class TestFromBound:
    def test_cells_do_not_overlap(self, frame, blob):
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=2.0)
        cells = approx.cell_ids()
        # No cell may contain another cell of the approximation.
        by_key = {(c.level, c.code) for c in cells}
        for cell in cells:
            ancestor = cell
            while ancestor.level > 0:
                ancestor = ancestor.parent()
                assert (ancestor.level, ancestor.code) not in by_key

    def test_interior_cells_coarser_than_boundary(self, frame, blob):
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=1.0)
        interior_levels = [c.cell.level for c in approx.cells if not c.is_boundary]
        boundary_levels = {c.cell.level for c in approx.cells if c.is_boundary}
        assert boundary_levels == {approx.max_level}
        assert min(interior_levels) < approx.max_level

    def test_fewer_cells_than_uniform_raster(self, frame, blob):
        epsilon = 1.0
        hr = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=epsilon)
        ur = UniformRasterApproximation(blob, epsilon=epsilon)
        assert hr.num_cells < ur.num_cells

    def test_conservative_no_false_negatives(self, frame, blob, rng):
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=2.0, conservative=True)
        xs = rng.uniform(25, 75, 600)
        ys = rng.uniform(25, 75, 600)
        exact = blob.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        assert not (exact & ~covered).any()

    def test_errors_within_distance_bound(self, frame, blob, rng):
        epsilon = 2.0
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=epsilon)
        xs = rng.uniform(25, 75, 600)
        ys = rng.uniform(25, 75, 600)
        exact = blob.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        mismatched = exact != covered
        if mismatched.any():
            assert max_distance_to_boundary(xs[mismatched], ys[mismatched], blob) <= epsilon + 1e-9

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500), epsilon=st.sampled_from([1.0, 2.0, 4.0]))
    def test_hausdorff_bound_holds(self, frame, seed, epsilon):
        polygon = noisy_convex_polygon(50.0, 50.0, 15.0, 16, seed=seed)
        approx = HierarchicalRasterApproximation.from_bound(polygon, frame, epsilon=epsilon)
        boundary_cells = approx.boundary_sample()
        original = sample_boundary(polygon, spacing=epsilon / 4)
        assert hausdorff_points(original, boundary_cells) <= epsilon + 1e-6

    def test_scalar_matches_vectorised(self, frame, blob, rng):
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=2.0)
        xs = rng.uniform(20, 80, 300)
        ys = rng.uniform(20, 80, 300)
        vector = approx.covers_points(xs, ys)
        scalar = np.array([approx.covers_point(float(x), float(y)) for x, y in zip(xs, ys)])
        np.testing.assert_array_equal(vector, scalar)

    def test_multipolygon(self, frame):
        a = Polygon([(10, 10), (30, 10), (30, 30), (10, 30)])
        b = Polygon([(60, 60), (80, 60), (80, 80), (60, 80)])
        approx = HierarchicalRasterApproximation.from_bound(MultiPolygon([a, b]), frame, epsilon=2.0)
        assert approx.covers_point(20.0, 20.0)
        assert approx.covers_point(70.0, 70.0)
        assert not approx.covers_point(45.0, 45.0)

    def test_covered_area_close_to_polygon_area(self, frame, blob):
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=1.0)
        # Conservative covering is a superset, but within a boundary ring of width ~epsilon.
        assert approx.covered_area() >= blob.area
        assert approx.covered_area() <= blob.area + blob.perimeter() * 3.0


class TestFromCellBudget:
    def test_budget_respected(self, frame, blob):
        for budget in (16, 64, 256):
            approx = HierarchicalRasterApproximation.from_cell_budget(blob, frame, max_cells=budget)
            assert 1 <= approx.num_cells <= budget

    def test_more_cells_means_tighter_covering(self, frame, blob):
        coarse = HierarchicalRasterApproximation.from_cell_budget(blob, frame, max_cells=16)
        fine = HierarchicalRasterApproximation.from_cell_budget(blob, frame, max_cells=256)
        assert fine.covered_area() <= coarse.covered_area() + 1e-9

    def test_invalid_budget(self, frame, blob):
        with pytest.raises(ApproximationError):
            HierarchicalRasterApproximation.from_cell_budget(blob, frame, max_cells=0)

    def test_budget_covering_still_conservative(self, frame, blob, rng):
        approx = HierarchicalRasterApproximation.from_cell_budget(blob, frame, max_cells=64)
        xs = rng.uniform(25, 75, 400)
        ys = rng.uniform(25, 75, 400)
        exact = blob.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        assert not (exact & ~covered).any()


class TestQueryRanges:
    def test_ranges_sorted_and_disjoint(self, frame, blob):
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=2.0)
        ranges = approx.query_ranges(level=approx.max_level)
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert lo1 < hi1
            assert hi1 <= lo2

    def test_ranges_select_covered_points(self, frame, blob, rng):
        level = 10
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=2.0)
        ranges = approx.query_ranges(level=max(level, approx.max_level))
        xs = rng.uniform(20, 80, 500)
        ys = rng.uniform(20, 80, 500)
        codes = frame.points_to_codes(xs, ys, max(level, approx.max_level))
        in_ranges = np.zeros(500, dtype=bool)
        for lo, hi in ranges:
            in_ranges |= (codes >= lo) & (codes < hi)
        covered = approx.covers_points(xs, ys)
        np.testing.assert_array_equal(in_ranges, covered)

    def test_memory_accounting(self, frame, blob):
        approx = HierarchicalRasterApproximation.from_bound(blob, frame, epsilon=2.0)
        assert approx.memory_bytes() == approx.num_cells * 8
