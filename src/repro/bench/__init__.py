"""Benchmark harness helpers (scaling, timing, plain-text + JSON reporting)."""

from repro.bench.harness import (
    BenchScale,
    Measurement,
    build_engines_from_env,
    engines_from_env,
    is_smoke_run,
    measure,
    scale_from_env,
)
from repro.bench.reporting import (
    append_run_record,
    default_records_path,
    format_ratio,
    format_table,
    print_table,
    run_record,
)

__all__ = [
    "BenchScale",
    "Measurement",
    "append_run_record",
    "build_engines_from_env",
    "default_records_path",
    "engines_from_env",
    "format_ratio",
    "format_table",
    "is_smoke_run",
    "measure",
    "print_table",
    "run_record",
    "scale_from_env",
]
