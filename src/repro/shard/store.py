"""Sharded updatable store: routed ingest over per-shard LSM stores.

A :class:`ShardedStore` owns one :class:`~repro.store.store.SpatialStore`
per tile of a :class:`~repro.shard.frame.ShardedFrame` and a single global
insertion-id sequence.  Ingest batches are routed per shard with one
vectorized :meth:`~repro.shard.frame.ShardedFrame.route_points` pass and
land in the member stores as explicit-id inserts, so the id space stays
**global**: any interleaving of sharded ingest produces exactly the ids an
unsharded store would assign, which is what makes every sharded query
mergeable bit for bit.

All member stores run on the **global frame and level** — the tiles decide
placement, never encoding — and share one
:class:`~repro.api.registry.IndexRegistry`, so a polygon suite's ACT index
is built once for all shards (member flushes invalidate only point-scoped
entries and leave it alone).

:class:`ShardedSnapshot` freezes all member snapshots in one pass — the
store is single-writer, so the combined view is one consistent cut of the
global id space — and answers queries by scatter-gather
(:mod:`repro.shard.gather`).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np

from repro.durable import faults
from repro.durable.wal import CommitLog, RecoveryReport, WriteAheadLog
from repro.errors import StoreError
from repro.geometry.point import PointSet
from repro.grid.uniform_grid import GridFrame
from repro.query.spec import AggregationQuery
from repro.shard.frame import ShardedFrame
from repro.shard.gather import (
    ShardSegment,
    sharded_act_join,
    sharded_estimate_count_range,
)
from repro.store.store import SizeTieredCompaction, SpatialStore, StoreStats

__all__ = ["ShardedStore", "ShardedSnapshot"]


class ShardedSnapshot:
    """One consistent cut across all shard snapshots of a sharded store."""

    __slots__ = ("sharded_frame", "frame", "level", "shards", "_registry")

    def __init__(self, sharded_frame: ShardedFrame, level: int, shards, registry=None) -> None:
        self.sharded_frame = sharded_frame
        self.frame = sharded_frame.frame
        self.level = level
        self.shards = tuple(shards)
        self._registry = registry

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------ #
    # segment plumbing
    # ------------------------------------------------------------------ #
    def segments(self) -> list[list[ShardSegment]]:
        """Per shard, the probe-ready live segments (runs first, memtable last)."""
        return [
            [ShardSegment(ids, xs, ys, values) for ids, xs, ys, values in snap._segments()]
            for snap in self.shards
        ]

    # ------------------------------------------------------------------ #
    # query paths (scatter-gather over the member snapshots)
    # ------------------------------------------------------------------ #
    def act_join(
        self,
        regions,
        epsilon: float = 4.0,
        query: AggregationQuery | None = None,
        trie=None,
        engine=None,
        build_engine=None,
        executor=None,
    ):
        """ACT aggregation join, bit-identical to the unsharded snapshot path.

        Every shard probes the same registry-cached index; the match pairs
        carry global insertion ids, so the gather merge replays the exact
        addition sequence of :meth:`StoreSnapshot.act_join` over one
        unsharded store with the same ingest history.
        """
        result = sharded_act_join(
            self.segments(),
            regions,
            self.frame,
            epsilon=epsilon,
            query=query,
            trie=trie,
            engine=engine,
            build_engine=build_engine,
            executor=executor,
            registry=self._registry,
        )
        result.extra["num_runs"] = sum(len(snap.runs) for snap in self.shards)
        result.extra["memtable_points"] = sum(
            int(snap.mem_ids.shape[0]) for snap in self.shards
        )
        return result

    def count_in_ranges(self, ranges, engine=None) -> int:
        """Sum of the members' exact tombstone-corrected range counts."""
        return sum(snap.count_in_ranges(ranges, engine=engine) for snap in self.shards)

    def raster_count(
        self,
        region,
        cells_per_polygon: int,
        conservative: bool = True,
        engine=None,
        build_engine=None,
    ) -> int:
        """Approximate count in ``region``; one approximation, K fan-outs.

        The query cells are decomposed once on the global frame — every
        shard counts against identical key ranges, so the integer partials
        sum to exactly the unsharded answer.
        """
        from repro.approx.hierarchical_raster import HierarchicalRasterApproximation

        approx = HierarchicalRasterApproximation.from_cell_budget(
            region,
            self.frame,
            max_cells=cells_per_polygon,
            conservative=conservative,
            max_level=self.level,
            engine=build_engine,
        )
        ranges = approx.query_ranges(self.level)
        return self.count_in_ranges(ranges, engine=engine)

    def estimate_count_range(self, region, epsilon: float):
        """Certain COUNT interval; per-shard coverage counts sum exactly."""
        coords = [
            (xs, ys) for snap in self.shards for _, xs, ys, _ in snap._segments()
        ]
        return sharded_estimate_count_range(coords, region, epsilon)

    # ------------------------------------------------------------------ #
    # point-set views
    # ------------------------------------------------------------------ #
    @property
    def num_live(self) -> int:
        return sum(snap.num_live for snap in self.shards)

    def live_ids(self) -> np.ndarray:
        """Sorted insertion ids of every live point (global id space)."""
        if not self.shards:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate([snap.live_ids() for snap in self.shards]))

    def live_points(self) -> PointSet:
        """All live points merged into ascending global-id order.

        Identical (order included) to :meth:`StoreSnapshot.live_points` of
        an unsharded store with the same ingest history — the canonical
        rebuild order.
        """
        segments = [seg for snap in self.shards for seg in snap._segments()]
        names = list(self.shards[0].mem_values) if self.shards else []
        if not segments:
            return PointSet(np.empty(0), np.empty(0), {name: np.empty(0) for name in names})
        ids = np.concatenate([seg[0] for seg in segments])
        xs = np.concatenate([seg[1] for seg in segments])
        ys = np.concatenate([seg[2] for seg in segments])
        order = np.argsort(ids, kind="stable")
        values = {
            name: np.concatenate([seg[3][name] for seg in segments])[order] for name in names
        }
        return PointSet(xs[order], ys[order], values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ShardedSnapshot(shards={len(self.shards)}, live={self.num_live})"


class ShardedStore:
    """K routed LSM stores behind one global id space (see module docstring)."""

    def __init__(
        self,
        frame: GridFrame,
        level: int,
        shards: int,
        attributes: tuple[str, ...] = (),
        memtable_capacity: int = 8192,
        compaction: SizeTieredCompaction | None = None,
        auto_compact: bool = True,
        incremental_compaction: bool = False,
        compaction_budget_bytes: int | None = None,
        registry=None,
    ) -> None:
        if shards < 1:
            raise StoreError("a sharded store needs at least one shard")
        self.sharded_frame = ShardedFrame(frame, shards)
        self.frame = frame
        self.level = int(level)
        self.attributes = tuple(attributes)
        self.memtable_capacity = int(memtable_capacity)
        self.auto_compact = auto_compact
        self.incremental_compaction = bool(incremental_compaction)
        self.compaction_budget_bytes = compaction_budget_bytes
        self._registry = registry
        self._stores = [
            SpatialStore(
                frame,
                level,
                attributes=self.attributes,
                memtable_capacity=memtable_capacity,
                compaction=compaction,
                auto_compact=auto_compact,
                incremental_compaction=incremental_compaction,
                compaction_budget_bytes=compaction_budget_bytes,
                registry=self.registry,
            )
            for _ in range(shards)
        ]
        self._next_id = 0
        # Durable plumbing, attached by :meth:`create` / :meth:`open`: each
        # member store gets its own WAL (records routed to that shard) and
        # the commit log marks, after every sharded mutation, a consistent
        # cut of all member (epoch, record_count) positions — the recovery
        # boundary that rolls a crash mid-broadcast back atomically.
        self._commit_log: CommitLog | None = None
        self._directory: Path | None = None
        self.last_recovery: RecoveryReport | None = None
        # Guards the global id sequence and keeps a snapshot one consistent
        # cut across all member stores while another thread ingests.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(
        cls, points: PointSet, frame: GridFrame, level: int, shards: int, **kwargs
    ) -> "ShardedStore":
        """Bulk-load: one routed insert + flush (K single-run member stores)."""
        store = cls(frame, level, shards, attributes=points.attribute_names, **kwargs)
        store.insert(points)
        store.flush()
        return store

    @classmethod
    def create(
        cls,
        directory,
        frame: GridFrame,
        level: int,
        shards: int,
        sync: bool = True,
        **kwargs,
    ) -> "ShardedStore":
        """A new **durable** sharded store rooted at ``directory``.

        Layout: ``sharded.json`` (global manifest), one
        ``shard{k:02d}/`` durable member store per tile (each with its own
        WAL) and ``commit/`` — the commit log whose records make sharded
        mutations atomic across the member logs.
        """
        directory = Path(directory)
        if (directory / "sharded.json").exists():
            raise StoreError(f"a sharded store already exists in {directory}")
        store = cls(frame, level, shards, **kwargs)
        store._directory = directory
        directory.mkdir(parents=True, exist_ok=True)
        for pos, member in enumerate(store._stores):
            member_dir = directory / f"shard{pos:02d}"
            member._directory = member_dir
            member.save(member_dir)
            member._wal = WriteAheadLog.create(member_dir / "wal", epoch=0, sync=sync)
        store._commit_log = CommitLog.create(directory / "commit", epoch=0, sync=sync)
        store._save_manifest(directory, commit_epoch=0)
        return store

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.sharded_frame.num_shards

    def insert(self, points: PointSet) -> np.ndarray:
        """Route a batch across the shards; returns the assigned global ids.

        Ids come from the store-wide sequence, exactly as an unsharded store
        would assign them; each member receives its slice as an explicit-id
        insert in ascending order (the routing groups with a stable sort).
        """
        with self._lock:
            n = len(points)
            ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
            self._next_id += n
            if n == 0:
                return ids
            routes = self.sharded_frame.route_points(points.xs, points.ys)
            order = np.argsort(routes, kind="stable")
            counts = np.bincount(routes, minlength=self.num_shards)
            bounds = np.zeros(self.num_shards + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            for shard_id, store in enumerate(self._stores):
                indices = order[bounds[shard_id] : bounds[shard_id + 1]]
                if indices.shape[0] == 0:
                    continue
                store.insert(points.select(indices), ids=ids[indices])
            self._commit()
            return ids

    def delete(self, ids) -> int:
        """Broadcast a delete; every id is recorded by exactly one shard.

        Members ignore ids they never held (buffered-membership check in the
        memtable, run-presence check before tombstoning), so the broadcast
        counts each deletion once no matter how the ids spread across
        shards.
        """
        with self._lock:
            newly = sum(store.delete(ids) for store in self._stores)
            self._commit()
            return newly

    def flush(self) -> int:
        """Flush every member memtable; returns how many produced a run."""
        with self._lock:
            flushed = sum(1 for store in self._stores if store.flush() is not None)
            self._commit()
            return flushed

    def compact(
        self,
        full: bool = False,
        max_merges: int | None = None,
        byte_budget: int | None = None,
    ) -> int:
        """Run compaction on every member; returns total merges performed."""
        with self._lock:
            merges = sum(
                store.compact(full=full, max_merges=max_merges, byte_budget=byte_budget)
                for store in self._stores
            )
            self._commit()
            return merges

    def _commit(self) -> None:
        """Mark the sharded mutation durable: one cut over all member WALs.

        Member inserts/deletes/flushes already fsynced their own records;
        the commit record — fsynced after all of them — is what recovery
        replays up to, so a crash between member writes rolls the whole
        operation back instead of resurrecting the shards it reached.
        """
        if self._commit_log is not None:
            self._commit_log.commit(
                [(member.wal.epoch, member.wal.record_count) for member in self._stores]
            )

    # ------------------------------------------------------------------ #
    # index registry
    # ------------------------------------------------------------------ #
    @property
    def registry(self):
        """One :class:`~repro.api.registry.IndexRegistry` shared by all shards.

        The polygon-suite ACT index every shard probes is global-frame, so
        one cache entry serves the whole fan-out; member flushes invalidate
        only point-scoped entries, leaving it untouched.
        """
        if self._registry is None:
            from repro.api.registry import IndexRegistry

            self._registry = IndexRegistry()
        return self._registry

    def attach_registry(self, registry) -> None:
        """Share an external registry (e.g. a dataset's) with every shard."""
        self._registry = registry
        for store in self._stores:
            store.attach_registry(registry)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def snapshot(self) -> ShardedSnapshot:
        """Freeze all member states in one pass (single-writer store, so the
        member snapshots form one consistent cut of the global id space)."""
        with self._lock:
            return ShardedSnapshot(
                self.sharded_frame,
                self.level,
                (store.snapshot() for store in self._stores),
                registry=self.registry,
            )

    def act_join(self, regions, **kwargs):
        return self.snapshot().act_join(regions, **kwargs)

    def raster_count(self, region, cells_per_polygon, **kwargs) -> int:
        return self.snapshot().raster_count(region, cells_per_polygon, **kwargs)

    def estimate_count_range(self, region, epsilon):
        return self.snapshot().estimate_count_range(region, epsilon)

    def count_in_ranges(self, ranges, engine=None) -> int:
        return self.snapshot().count_in_ranges(ranges, engine=engine)

    def live_points(self) -> PointSet:
        return self.snapshot().live_points()

    def rebuilt(self, **kwargs) -> "ShardedStore":
        """A from-scratch sharded store over the current live point set."""
        return ShardedStore.from_points(
            self.live_points(), self.frame, self.level, self.num_shards, **kwargs
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    #: Manifest schema version written by :meth:`save`.
    MANIFEST_VERSION = 1

    def _save_manifest(self, directory: Path, commit_epoch: int) -> None:
        policy = self._stores[0].compaction
        manifest = {
            "format_version": self.MANIFEST_VERSION,
            "shards": self.num_shards,
            "level": self.level,
            "attributes": list(self.attributes),
            "next_id": int(self._next_id),
            "frame": {
                "origin_x": float(self.frame.origin_x),
                "origin_y": float(self.frame.origin_y),
                "size": float(self.frame.size),
            },
            "memtable_capacity": self.memtable_capacity,
            "auto_compact": self.auto_compact,
            "incremental_compaction": self.incremental_compaction,
            "compaction_budget_bytes": self.compaction_budget_bytes,
            "compaction": {
                "min_runs": policy.min_runs,
                "tier_base": policy.tier_base,
            },
            "commit_epoch": int(commit_epoch),
        }
        tmp_path = directory / "sharded.json.tmp"
        with open(tmp_path, "w") as handle:
            handle.write(json.dumps(manifest, indent=2))
            handle.flush()
            faults.fsync_fileno(handle.fileno())
        faults.fsync_dir(directory)
        faults.replace(tmp_path, directory / "sharded.json")
        faults.fsync_dir(directory)

    def save(self, directory=None) -> Path:
        """Checkpoint every member plus the global manifest; see
        :meth:`SpatialStore.save` for the per-member crash-safety story.

        An in-place save of a durable sharded store truncates every member
        WAL (each member save does) and then the commit log — the sharded
        epoch advances only after all members are durably checkpointed, so
        a crash anywhere in between recovers consistently: saved members
        replay nothing (their commit-cut entries are from the previous
        epoch), unsaved ones replay their logs up to the last cut.
        """
        with self._lock:
            if directory is None:
                if self._directory is None:
                    raise StoreError("save() needs a directory for a non-durable store")
                directory = self._directory
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            in_place = self._commit_log is not None and directory == self._directory
            for pos, member in enumerate(self._stores):
                member.save(directory / f"shard{pos:02d}")
            # Manifest (with the advanced epoch) goes durable *before* the
            # commit log truncates: a crash in between leaves an empty new
            # epoch to recover (nothing to replay — every member is saved),
            # never a commit log newer than the manifest that names it.
            self._save_manifest(
                directory,
                commit_epoch=self._commit_log.epoch + 1 if in_place else 0,
            )
            if in_place:
                self._commit_log.truncate()
            return directory

    @classmethod
    def open(
        cls,
        directory,
        registry=None,
        durable: bool | None = None,
        sync: bool = True,
    ) -> "ShardedStore":
        """Restore a sharded store checkpointed with :meth:`save`.

        With the durable layout present, the last commit-log cut bounds
        each member's WAL replay — acked sharded mutations come back whole,
        un-acked ones are rolled back on every shard — and the global id
        sequence resumes past everything recovered.
        """
        directory = Path(directory)
        manifest_path = directory / "sharded.json"
        if not manifest_path.exists():
            raise StoreError(f"no sharded store manifest in {directory}")
        manifest = json.loads(manifest_path.read_text())
        version = int(manifest.get("format_version", -1))
        if version != cls.MANIFEST_VERSION:
            raise StoreError(
                f"unsupported sharded manifest version {version} "
                f"(this build reads version {cls.MANIFEST_VERSION})"
            )
        stale_tmp = directory / "sharded.json.tmp"
        if stale_tmp.exists():
            stale_tmp.unlink()
        frame = GridFrame.from_raw(
            manifest["frame"]["origin_x"],
            manifest["frame"]["origin_y"],
            manifest["frame"]["size"],
        )
        shards = int(manifest["shards"])
        store = cls(
            frame,
            int(manifest["level"]),
            shards,
            attributes=tuple(manifest["attributes"]),
            memtable_capacity=int(manifest["memtable_capacity"]),
            compaction=SizeTieredCompaction(
                min_runs=int(manifest["compaction"]["min_runs"]),
                tier_base=float(manifest["compaction"]["tier_base"]),
            ),
            auto_compact=bool(manifest["auto_compact"]),
            incremental_compaction=bool(manifest.get("incremental_compaction", False)),
            compaction_budget_bytes=manifest.get("compaction_budget_bytes"),
            registry=registry,
        )
        store._directory = directory
        if durable is None:
            durable = (directory / "commit").exists()
        limits: "list[tuple[int | None, int] | None]" = [None] * shards
        if durable:
            store._commit_log, cut = CommitLog.open(
                directory / "commit",
                epoch=int(manifest.get("commit_epoch", 0)),
                sync=sync,
            )
            if cut is None:
                # No sharded mutation committed since the last checkpoint:
                # any member records are an un-acked broadcast — roll back.
                limits = [(None, 0)] * shards
            else:
                if len(cut) != shards:
                    raise StoreError(
                        f"commit log cut covers {len(cut)} members, expected {shards}"
                    )
                limits = list(cut)
        members = []
        for pos in range(shards):
            members.append(
                SpatialStore.open(
                    directory / f"shard{pos:02d}",
                    registry=store.registry,
                    durable=durable,
                    sync=sync,
                    _replay_limit=limits[pos],
                )
            )
        store._stores = members
        store._next_id = max(
            int(manifest["next_id"]), max(member._next_id for member in members)
        )
        if durable:
            store.last_recovery = RecoveryReport.merged(
                [member.last_recovery for member in members if member.last_recovery]
            )
        return store

    def close(self) -> None:
        """Release every member WAL and the commit log (if attached)."""
        with self._lock:
            for member in self._stores:
                member.close()
            if self._commit_log is not None:
                self._commit_log.close()

    @property
    def directory(self) -> "Path | None":
        return self._directory

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> tuple[SpatialStore, ...]:
        return tuple(self._stores)

    @property
    def stats(self) -> StoreStats:
        """Member counters summed into one store-wide view."""
        combined = StoreStats()
        for store in self._stores:
            combined.inserts += store.stats.inserts
            combined.deletes += store.stats.deletes
            combined.flushes += store.stats.flushes
            combined.flushed_entries += store.stats.flushed_entries
            combined.compactions += store.stats.compactions
            combined.compacted_entries += store.stats.compacted_entries
            combined.purged_tombstones += store.stats.purged_tombstones
            combined.compaction_debt_bytes += store.stats.compaction_debt_bytes
        return combined

    @property
    def num_live(self) -> int:
        return sum(store.num_live for store in self._stores)

    @property
    def num_runs(self) -> int:
        return sum(store.num_runs for store in self._stores)

    @property
    def num_tombstones(self) -> int:
        return sum(store.num_tombstones for store in self._stores)

    @property
    def memtable_size(self) -> int:
        return sum(store.memtable_size for store in self._stores)

    def memory_bytes(self) -> int:
        return sum(store.memory_bytes() for store in self._stores)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedStore(shards={self.num_shards}, live={self.num_live}, "
            f"runs={self.num_runs})"
        )
