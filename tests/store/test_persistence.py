"""Run persistence: .npz round trips restore bit-identical segments."""

from __future__ import annotations

import numpy as np

from repro.store import Run, SpatialStore


def _sample_run(workload, frame, store_level):
    points = workload.taxi_points(800)
    store = SpatialStore.from_points(points, frame, store_level)
    return store._runs[0]


class TestRunRoundTrip:
    def test_arrays_identical(self, tmp_path, workload, frame, store_level):
        run = _sample_run(workload, frame, store_level)
        path = tmp_path / "run.npz"
        run.save(path)
        loaded = Run.load(path)
        np.testing.assert_array_equal(loaded.ids, run.ids)
        np.testing.assert_array_equal(loaded.xs, run.xs)
        np.testing.assert_array_equal(loaded.ys, run.ys)
        np.testing.assert_array_equal(loaded.codes, run.codes)
        np.testing.assert_array_equal(loaded.code_rows, run.code_rows)
        assert loaded.num_in_frame == run.num_in_frame
        assert loaded.level == run.level
        assert set(loaded.values) == set(run.values)
        for name in run.values:
            np.testing.assert_array_equal(loaded.values[name], run.values[name])

    def test_frame_restored_bit_exactly(self, tmp_path, workload, frame, store_level):
        run = _sample_run(workload, frame, store_level)
        path = tmp_path / "run.npz"
        run.save(path)
        loaded = Run.load(path)
        assert loaded.frame.origin_x == frame.origin_x
        assert loaded.frame.origin_y == frame.origin_y
        assert loaded.frame.size == frame.size

    def test_loaded_run_answers_queries_identically(
        self, tmp_path, workload, frame, store_level
    ):
        run = _sample_run(workload, frame, store_level)
        path = tmp_path / "run.npz"
        run.save(path)
        loaded = Run.load(path)
        lo, hi = int(run.codes[0]), int(run.codes[-1]) + 1
        ranges = np.array([[lo, (lo + hi) // 2], [(lo + hi) // 2, hi]], dtype=np.uint64)
        assert loaded.index.count_ranges_batch(ranges) == run.index.count_ranges_batch(ranges)
        # Re-linearizing the loaded coordinates on the loaded frame reproduces
        # the stored codes — the layout survives the round trip semantically,
        # not just byte-wise.
        from repro.store import encode_points_at

        recomputed = encode_points_at(
            loaded.frame, loaded.level,
            loaded.xs[loaded.code_rows], loaded.ys[loaded.code_rows],
        )
        np.testing.assert_array_equal(recomputed, loaded.codes)
