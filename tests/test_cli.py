"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.strategy == "all"
        assert args.epsilon == 4.0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--strategy", "bogus"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.approx" in out

    def test_workload_summary(self, capsys):
        assert main(["workload", "--points", "500", "--regions", "4"]) == 0
        out = capsys.readouterr().out
        assert "points" in out
        assert "500" in out

    def test_join_single_strategy(self, capsys):
        code = main(
            ["join", "--strategy", "brj", "--points", "2000", "--regions", "4", "--epsilon", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "brj" in out
        assert "median rel. error" in out

    def test_join_act_strategy(self, capsys):
        code = main(
            ["join", "--strategy", "act", "--points", "1000", "--regions", "4", "--epsilon", "8"]
        )
        assert code == 0
        assert "act" in capsys.readouterr().out

    def test_estimate_command(self, capsys):
        code = main(["estimate", "--points", "2000", "--regions", "4", "--epsilon", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "certain interval" in out

    def test_plan_command_with_bound(self, capsys):
        assert main(["plan", "--points", "2000", "--regions", "4", "--epsilon", "10"]) == 0
        out = capsys.readouterr().out
        assert "optimizer chose" in out

    def test_plan_command_exact(self, capsys):
        assert main(["plan", "--points", "2000", "--regions", "4"]) == 0
        out = capsys.readouterr().out
        assert "'exact'" in out

    def test_census_suite(self, capsys):
        assert main(["workload", "--suite", "census", "--points", "100", "--regions", "9"]) == 0
        assert "census" in capsys.readouterr().out
