"""Tiled-frame geometry: factorization, routing, and exact code mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.shard import ShardedFrame

SHARD_COUNTS = (1, 2, 4, 7, 12)


class TestTiling:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_tiles_partition_the_grid(self, frame, shards):
        sharded = ShardedFrame(frame, shards)
        assert sharded.num_shards == shards
        assert len(sharded.tiles) == shards
        assert sharded.tiles_x * sharded.tiles_y == shards
        # The tile rectangles cover the grid-level cell range exactly once.
        cells = 1 << sharded.grid_level
        covered = np.zeros((cells, cells), dtype=np.int64)
        for tile in sharded.tiles:
            covered[tile.row0 : tile.row1, tile.col0 : tile.col1] += 1
        assert (covered == 1).all()

    def test_near_square_factorization(self, frame):
        sharded = ShardedFrame(frame, 12)
        assert (sharded.tiles_x, sharded.tiles_y) == (4, 3)
        assert ShardedFrame(frame, 7).tiles_x == 7  # prime: one row

    def test_invalid_shard_count(self, frame):
        with pytest.raises(QueryError):
            ShardedFrame(frame, 0)


class TestRouting:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_points_land_in_their_tile(self, frame, taxi_points, shards):
        sharded = ShardedFrame(frame, shards)
        routes = sharded.route_points(taxi_points.xs, taxi_points.ys)
        assert routes.shape == (len(taxi_points),)
        assert routes.min() >= 0 and routes.max() < shards
        for shard_id in range(shards):
            mask = routes == shard_id
            if not mask.any():
                continue
            box = sharded.shard_box(shard_id)
            assert (taxi_points.xs[mask] >= box.min_x).all()
            assert (taxi_points.xs[mask] <= box.max_x).all()
            assert (taxi_points.ys[mask] >= box.min_y).all()
            assert (taxi_points.ys[mask] <= box.max_y).all()

    def test_single_shard_routes_everything_to_zero(self, frame, taxi_points):
        sharded = ShardedFrame(frame, 1)
        assert (sharded.route_points(taxi_points.xs, taxi_points.ys) == 0).all()


class TestCodeMapping:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("level", (6, 8))
    def test_tile_codes_map_to_global_codes(self, frame, taxi_points, shards, level):
        """Encoding on a tile frame + mapping == encoding on the global frame."""
        sharded = ShardedFrame(frame, shards)
        routes = sharded.route_points(taxi_points.xs, taxi_points.ys)
        for tile in sharded.tiles:
            mask = routes == tile.shard_id
            if not mask.any():
                continue
            xs, ys = taxi_points.xs[mask], taxi_points.ys[mask]
            local = tile.frame.points_to_codes(xs, ys, level)
            mapped = sharded.to_global_codes(tile.shard_id, local, level)
            global_level = sharded.global_level(tile.shard_id, level)
            assert global_level == level + sharded.grid_level - tile.tile_level
            expected = frame.points_to_codes(xs, ys, global_level)
            assert np.array_equal(mapped, expected)

    def test_mapping_below_tile_level_rejected(self, frame):
        sharded = ShardedFrame(frame, 12)
        tile = next(t for t in sharded.tiles if t.tile_level > 0)
        with pytest.raises(QueryError):
            sharded.to_global_codes(
                tile.shard_id, np.zeros(1, dtype=np.uint64), tile.tile_level - 1
            )
