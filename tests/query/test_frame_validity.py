"""Frame-validity regression tests: out-of-frame probes must never match.

The conservativity guarantee of a distance-bounded approximation is that it
errs only at its boundary cells — false positives within ``epsilon`` of a
region boundary, never frame-widths away.  ``GridFrame.points_to_codes``
clamps out-of-frame points onto edge cells, so every probe path has to mask
with the frame before trusting the codes; these tests lock that in on both
probe engines, for all index forms, and for every frame edge.  They also
lock the empty-input behaviour of the probe paths (N = 0 must flow through
the batch kernels) so future sweeps cannot regress either edge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import HierarchicalRasterApproximation
from repro.geometry import BoundingBox, Polygon
from repro.geometry.point import PointSet
from repro.grid import GridFrame
from repro.index import AdaptiveCellTrie, FlatACT
from repro.query import (
    act_approximate_join,
    estimate_count_range,
    exact_count,
    raster_count,
)
from repro.query.containment import LinearizedPoints
from repro.index.sorted_array import SortedCodeArray

ENGINES = ("python", "vectorized")


@pytest.fixture(scope="module")
def frame() -> GridFrame:
    return GridFrame(BoundingBox(0.0, 0.0, 8.0, 8.0))


@pytest.fixture(scope="module")
def edge_polygon() -> Polygon:
    """A polygon hugging the frame's max corner — its conservative
    approximation covers the edge cells that clamped points land in."""
    return Polygon([(5.0, 5.0), (7.9, 5.0), (7.9, 7.9), (5.0, 7.9)])


@pytest.fixture(scope="module", params=["trie", "flat"])
def act_index(request, frame, edge_polygon):
    if request.param == "trie":
        return AdaptiveCellTrie.build([edge_polygon], frame, epsilon=1.0)
    return FlatACT.build([edge_polygon], frame, epsilon=1.0)


#: One probe beyond each frame edge (the frame is [0, 8+margin] squared),
#: plus the far-away repro from the original bug report.
OUTSIDE_POINTS = [
    (-1.0, 6.0),  # left of min_x
    (100.0, 6.0),  # right of max_x
    (6.0, -1.0),  # below min_y
    (6.0, 100.0),  # above max_y
    (100.0, 100.0),  # far corner (the original x=100 repro)
    (-0.0000001, 6.0),  # barely outside
]


class TestOutOfFrameProbes:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_join_counts_zero_for_outside_points(self, frame, edge_polygon, act_index, engine):
        xs, ys = zip(*OUTSIDE_POINTS)
        points = PointSet(np.array(xs), np.array(ys))
        result = act_approximate_join(
            points, [edge_polygon], frame, epsilon=1.0, trie=act_index, engine=engine
        )
        assert result.counts.tolist() == [0]

    def test_scalar_lookups_empty_outside(self, act_index):
        for x, y in OUTSIDE_POINTS:
            assert act_index.lookup_point(x, y) == []

    def test_batch_lookup_empty_outside(self, act_index):
        xs, ys = map(np.asarray, zip(*OUTSIDE_POINTS))
        offsets, pids = act_index.lookup_points_batch(xs, ys)
        assert offsets.tolist() == [0] * (len(OUTSIDE_POINTS) + 1)
        assert pids.size == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mixed_batch_keeps_inside_matches(self, frame, edge_polygon, act_index, engine):
        """Out-of-frame points are masked without shifting in-frame matches."""
        xs = np.array([6.0, 100.0, 6.5, -1.0])
        ys = np.array([6.0, 100.0, 6.5, 6.0])
        points = PointSet(xs, ys)
        result = act_approximate_join(
            points, [edge_polygon], frame, epsilon=1.0, trie=act_index, engine=engine
        )
        assert result.counts.tolist() == [2]
        offsets, pids = act_index.lookup_points_batch(xs, ys)
        assert offsets.tolist() == [0, 1, 1, 2, 2]
        assert pids.tolist() == [0, 0]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_point_on_max_edge_keeps_matching(self, engine):
        """The frame is closed: a point exactly on the max edge clamps into
        the last cell, which a conservative edge-touching approximation
        covers — it must keep matching."""
        frame = GridFrame(BoundingBox(0.0, 0.0, 8.0, 8.0), margin_fraction=0.0)
        polygon = Polygon([(6.0, 6.0), (8.0, 6.0), (8.0, 8.0), (6.0, 8.0)])
        points = PointSet(np.array([8.0, 8.0]), np.array([8.0, 7.0]))
        result = act_approximate_join(points, [polygon], frame, epsilon=1.0, engine=engine)
        assert result.counts.tolist() == [2]

    def test_hr_covers_points_outside_frame(self, frame, edge_polygon):
        approx = HierarchicalRasterApproximation.from_bound(edge_polygon, frame, epsilon=1.0)
        xs, ys = map(np.asarray, zip(*OUTSIDE_POINTS))
        assert not approx.covers_points(xs, ys).any()
        for x, y in OUTSIDE_POINTS:
            assert not approx.covers_point(x, y)
        # Scalar and batch stay in lockstep on a mixed batch.
        mixed_x = np.array([6.0, 100.0, 6.5])
        mixed_y = np.array([6.0, 100.0, 6.5])
        batch = approx.covers_points(mixed_x, mixed_y)
        scalar = [approx.covers_point(float(x), float(y)) for x, y in zip(mixed_x, mixed_y)]
        assert batch.tolist() == scalar == [True, False, True]

    def test_linearized_points_drop_outside(self, frame, edge_polygon):
        """raster_count must not count clamped out-of-frame points."""
        inside = [(6.0, 6.0), (6.5, 7.0)]
        xs, ys = map(np.asarray, zip(*(inside + OUTSIDE_POINTS)))
        points = PointSet(xs, ys)
        linearized = LinearizedPoints.build(points, frame, level=6)
        assert linearized.size == len(inside)
        index = SortedCodeArray(linearized.codes, assume_sorted=True)
        approx_count = raster_count(edge_polygon, linearized, index, cells_per_polygon=64)
        exact = exact_count(edge_polygon, points)
        assert exact == 2
        # Conservative approximation: no false negatives, and the clamped
        # out-of-frame points contribute nothing.
        assert exact <= approx_count <= len(inside)


class TestEmptyInputs:
    """Lock the N = 0 paths the batch kernels must keep supporting."""

    def test_empty_batch_lookup(self, act_index):
        offsets, pids = act_index.lookup_points_batch(np.empty(0), np.empty(0))
        assert offsets.tolist() == [0]
        assert pids.size == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_join(self, frame, edge_polygon, engine):
        empty = PointSet(np.empty(0), np.empty(0))
        result = act_approximate_join(empty, [edge_polygon], frame, epsilon=1.0, engine=engine)
        assert result.counts.tolist() == [0]
        assert result.index_probes == 0

    def test_empty_estimate_count_range(self, edge_polygon):
        empty = PointSet(np.empty(0), np.empty(0))
        estimate = estimate_count_range(empty, edge_polygon, epsilon=1.0)
        assert estimate.approximate == 0.0
        assert estimate.lower == 0.0
        assert estimate.upper == 0.0
        assert estimate.contains(0.0)

    def test_empty_linearized_points(self, frame):
        empty = PointSet(np.empty(0), np.empty(0))
        linearized = LinearizedPoints.build(empty, frame, level=5)
        assert linearized.size == 0
