"""Tests for selectivity estimation from raster approximations."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.geometry import BoundingBox, Polygon
from repro.query import (
    PointHistogram,
    area_selectivity,
    exact_count,
    histogram_selectivity,
)


class TestAreaSelectivity:
    def test_square_region_fraction(self):
        extent = BoundingBox(0.0, 0.0, 100.0, 100.0)
        region = Polygon([(0.0, 0.0), (50.0, 0.0), (50.0, 50.0), (0.0, 50.0)])
        estimate = area_selectivity(region, extent, epsilon=2.0)
        assert estimate.estimate == pytest.approx(0.25, abs=0.02)
        assert estimate.low <= 0.25 <= estimate.high

    def test_interval_brackets_estimate(self, l_shape):
        extent = BoundingBox(-2.0, -2.0, 8.0, 8.0)
        estimate = area_selectivity(l_shape, extent, epsilon=0.5)
        assert estimate.low <= estimate.estimate <= estimate.high
        assert 0.0 <= estimate.low and estimate.high <= 1.0

    def test_interval_narrows_with_bound(self, l_shape):
        extent = BoundingBox(-2.0, -2.0, 8.0, 8.0)
        loose = area_selectivity(l_shape, extent, epsilon=2.0)
        tight = area_selectivity(l_shape, extent, epsilon=0.25)
        assert (tight.high - tight.low) <= (loose.high - loose.low)

    def test_validation(self, l_shape):
        with pytest.raises(QueryError):
            area_selectivity(l_shape, BoundingBox(0, 0, 10, 10), epsilon=0.0)


class TestHistogramSelectivity:
    def test_matches_exact_fraction(self, taxi_points, neighborhoods, workload):
        region = neighborhoods[3]
        exact_fraction = exact_count(region, taxi_points) / len(taxi_points)
        estimate = histogram_selectivity(taxi_points, region, workload.extent, resolution=128)
        assert estimate.estimate == pytest.approx(exact_fraction, abs=0.03)

    def test_interval_contains_exact_fraction(self, taxi_points, neighborhoods, workload):
        histogram = PointHistogram(taxi_points, workload.extent, resolution=96)
        for region in neighborhoods[:5]:
            exact_fraction = exact_count(region, taxi_points) / len(taxi_points)
            estimate = histogram.estimate(region)
            assert estimate.low - 1e-9 <= exact_fraction <= estimate.high + 1e-9

    def test_histogram_reuse_is_consistent(self, taxi_points, neighborhoods, workload):
        histogram = PointHistogram(taxi_points, workload.extent)
        region = neighborhoods[0]
        a = histogram.estimate(region)
        b = histogram.estimate(region)
        assert a == b

    def test_skewed_data_better_than_uniform_assumption(self, taxi_points, neighborhoods, workload):
        """With clustered points the histogram estimator is closer to the truth
        than the area-based estimator for most regions."""
        histogram = PointHistogram(taxi_points, workload.extent, resolution=128)
        histogram_wins = 0
        total = 0
        for region in neighborhoods:
            exact_fraction = exact_count(region, taxi_points) / len(taxi_points)
            hist_err = abs(histogram.estimate(region).estimate - exact_fraction)
            area_err = abs(
                area_selectivity(region, workload.extent, epsilon=20.0).estimate - exact_fraction
            )
            total += 1
            if hist_err <= area_err:
                histogram_wins += 1
        assert histogram_wins >= total * 0.6

    def test_validation(self, taxi_points, workload):
        with pytest.raises(QueryError):
            PointHistogram(taxi_points, workload.extent, resolution=0)
