"""FIG2 — the motivating example of Figure 2.

The paper's Figure 2 contrasts two approximate counts of taxi pickups inside a
query region: one computed over the MBR (closer to the exact *number* but
containing points far away from the region) and one computed over a uniform
raster approximation (slightly larger count, but every extra point is within
the distance bound of the region boundary).

This benchmark reproduces the comparison quantitatively: for one query
polygon it reports the exact count, the MBR count, the raster count, and —
crucially — the maximum distance of the admitted false positives from the
region boundary under each approximation.
"""

from __future__ import annotations

import numpy as np

from repro.approx import MBRApproximation, UniformRasterApproximation
from repro.bench import print_table
from repro.query import exact_count, max_distance_to_boundary


def _false_positive_distance(points, region, approx) -> tuple[int, float]:
    covered = approx.covers_points(points.xs, points.ys)
    exact = region.contains_points(points.xs, points.ys)
    false_positives = covered & ~exact
    distance = max_distance_to_boundary(
        points.xs[false_positives], points.ys[false_positives], region
    )
    return int(covered.sum()), distance


def test_fig2_mbr_vs_raster_counts(benchmark, taxi_points, neighborhoods):
    region = neighborhoods[len(neighborhoods) // 2]
    epsilon = 10.0

    def run():
        mbr = MBRApproximation(region)
        raster = UniformRasterApproximation(region, epsilon=epsilon, conservative=True)
        exact = exact_count(region, taxi_points)
        mbr_count, mbr_distance = _false_positive_distance(taxi_points, region, mbr)
        raster_count_, raster_distance = _false_positive_distance(taxi_points, region, raster)
        return exact, mbr_count, mbr_distance, raster_count_, raster_distance

    exact, mbr_count, mbr_distance, raster_count_, raster_distance = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print_table(
        ["approximation", "count", "count error", "max FP distance (m)"],
        [
            ["exact", exact, 0, 0.0],
            ["MBR", mbr_count, mbr_count - exact, mbr_distance],
            [f"UniformRaster (eps={10.0} m)", raster_count_, raster_count_ - exact, raster_distance],
        ],
        title="FIG2  Motivating example: counts and distance of false positives",
    )
    benchmark.extra_info.update(
        {
            "exact": exact,
            "mbr_count": mbr_count,
            "mbr_max_fp_distance_m": round(mbr_distance, 2),
            "raster_count": raster_count_,
            "raster_max_fp_distance_m": round(raster_distance, 2),
        }
    )

    # Paper claim: the raster's false positives stay within the bound, the
    # MBR's error is data dependent and (here) much larger.
    assert raster_distance <= 10.0 + 1e-6
    assert mbr_distance > raster_distance
