"""Restartable serving: a QueryServer node survives kill -9 mid-ingest.

The durability subsystem end to end, as a two-process demo:

1. A **node** child process creates a durable session on disk — a WAL'd
   :class:`~repro.store.SpatialStore`, a polygon suite, an engine config —
   checkpoints it with ``SpatialDataset.save``, keeps ingesting (the tail
   lives only in the write-ahead log), serves a burst of aggregation joins
   through a :class:`~repro.serve.QueryServer`, prints the answers … and
   then SIGKILLs itself.  No close, no flush, no goodbye.
2. The parent **restarts** the node: ``SpatialDataset.open`` reads the
   session manifest, reopens the store (replaying the WAL tail past the
   checkpoint — the recovery report says exactly what came back), verifies
   every suite fingerprint, and serves the identical burst again.

The parity check at the end is the paper-grade contract: the restarted
node's responses are **bit-identical** — float aggregates included — to the
ones served before the crash.

Run with::

    python examples/restartable_serving.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile

import numpy as np

from repro import NYCWorkload, SpatialDataset
from repro.query import AggregationQuery
from repro.query.spec import Aggregate
from repro.serve import QueryServer
from repro.store import SpatialStore

SPECS = [
    AggregationQuery(epsilon=8.0),
    AggregationQuery(aggregate=Aggregate.SUM, attribute="fare", epsilon=8.0),
    AggregationQuery(aggregate=Aggregate.AVG, attribute="fare", epsilon=8.0),
]


def _serve_burst(dataset) -> list[dict]:
    """One deterministic coalesced burst; responses as plain lists."""
    server = QueryServer(dataset, max_batch=16, max_wait_ms=50.0)
    futures = [server.submit_join("neighborhoods", spec=spec) for spec in SPECS]
    server.start()
    responses = [f.result(timeout=60) for f in futures]
    server.close()
    return [
        {"counts": r.counts.tolist(), "aggregates": r.aggregates.tolist()}
        for r in responses
    ]


def node(directory: str) -> None:
    """The serving node: build, checkpoint, keep ingesting, serve, die."""
    workload = NYCWorkload(seed=7)
    points = workload.taxi_points(40_000)
    half = len(points) // 2

    store = SpatialStore.create(
        os.path.join(directory, "store"),
        workload.frame(),
        10,
        attributes=points.attribute_names,
        memtable_capacity=4096,
    )
    dataset = SpatialDataset(
        store, suites={"neighborhoods": workload.neighborhoods(count=24)}
    )
    store.insert(points.select(np.arange(half)))
    dataset.save(directory)  # checkpoint: runs + manifest, WAL truncated
    store.insert(points.select(np.arange(half, len(points))))  # WAL-only tail
    store.delete(np.arange(0, 2000, dtype=np.int64))  # also WAL-only

    print(json.dumps({"served": _serve_burst(dataset)}), flush=True)
    os.kill(os.getpid(), signal.SIGKILL)  # no close(), no flush()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="restartable-") as directory:
        print("== starting node (it will checkpoint, ingest, serve, crash) ==")
        child = subprocess.run(
            [sys.executable, __file__, "--node", directory],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr
        before = json.loads(child.stdout.splitlines()[-1])["served"]
        print(f"node killed (SIGKILL) after serving {len(before)} responses")

        print("\n== restarting: SpatialDataset.open over the session dir ==")
        dataset = SpatialDataset.open(directory)
        report = dataset.store.last_recovery
        print(
            f"recovery: {report.records} WAL records replayed "
            f"({report.inserted_points} points, {report.deletes} delete batches, "
            f"{report.flushes} flushes) in {report.seconds * 1e3:.1f} ms"
        )

        after = _serve_burst(dataset)
        for mine, theirs in zip(before, after):
            assert mine["counts"] == theirs["counts"]
            assert mine["aggregates"] == theirs["aggregates"]
        print(
            f"\nparity: {len(after)} responses bit-identical across the crash "
            "(counts and float aggregates)"
        )
        dataset.store.close()


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--node":
        node(sys.argv[2])
    else:
        main()
