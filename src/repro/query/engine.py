"""Batch probe engine: the execution backends of the query layer.

Every query strategy in this library boils down to the same probe phase —
"for each point, which indexed regions match?" followed by a fused
aggregation.  This module factors that phase into a :class:`ProbeEngine`
abstraction with two interchangeable backends:

* ``python`` — the original per-point index-nested loops.  Every probe walks
  the index from Python, exactly as the seed reproduction did.  This backend
  is kept as the **correctness oracle**: its per-polygon accumulation order
  defines the reference result.
* ``vectorized`` — the batch backend.  All points are probed at once through
  the batch index APIs (:meth:`FlatACT.lookup_points`,
  :meth:`RStarTree.query_points`, :meth:`ShapeIndex.query_points`,
  :meth:`CodeIndex.count_ranges_batch`) and the aggregation is fused over the
  CSR match lists with ``np.add.at`` / ``np.bincount``.

The vectorized backend reproduces the python backend's accumulation **bit for
bit**: the CSR match lists are point-major, so for every polygon the float
additions happen in ascending point order — the same order the per-point loop
uses — and ``np.add.at`` applies them unbuffered in sequence.  For the ACT
join (no geometric tests) the parity is therefore exact by construction.  The
exact joins additionally rely on the scalar and vectorized point-in-polygon
predicates agreeing, which — as in the seed's reference tests — holds except
for points within a rounding error of an edge's on-boundary threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.geometry.predicates import point_in_region

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "ProbeEngine",
    "ProbeOutcome",
    "PythonLoopEngine",
    "VectorizedEngine",
    "get_engine",
]

#: Names of the available backends.
ENGINES = ("python", "vectorized")
#: Backend used when the caller does not choose one.
DEFAULT_ENGINE = "vectorized"


@dataclass(slots=True)
class ProbeOutcome:
    """Result of one probe-and-aggregate phase over a point batch."""

    sums: np.ndarray
    counts: np.ndarray
    pip_tests: int = 0
    index_probes: int = 0
    extra: dict = field(default_factory=dict)


class ProbeEngine:
    """One execution backend of the probe phase.

    Subclasses implement the probe-and-aggregate phase for every index kind
    the query layer uses.  ``xs``/``ys``/``values`` are equal-length arrays of
    the (already filtered) probe points and their aggregation values;
    ``num_regions`` sizes the output groups.
    """

    name: str = "abstract"

    def probe_act(self, trie, xs, ys, values, num_regions) -> ProbeOutcome:
        """Approximate probe of the ACT index (no PIP tests).

        ``trie`` is either the pointer :class:`~repro.index.act.AdaptiveCellTrie`
        or a bulk-loaded :class:`~repro.index.flat_act.FlatACT` — both expose
        the same ``lookup_point`` / ``lookup_points_batch`` surface, so the
        probe backends are agnostic to which build engine produced the index.
        """
        raise NotImplementedError

    def probe_act_pairs(self, trie, xs, ys) -> tuple[np.ndarray, np.ndarray]:
        """ACT matches as point-major CSR ``(offsets, polygon_ids)`` pairs.

        The aggregation-free half of :meth:`probe_act`: the updatable store
        fans its probe phase out across memtable and runs, tags each
        segment's match pairs with global point ids, and fuses the
        aggregation itself after merging — so it needs the engine-specific
        *lookup* step (per-point trie walk vs. one batch call) without the
        per-segment aggregation baked in.
        """
        raise NotImplementedError

    def probe_rtree(self, tree, regions, xs, ys, values) -> ProbeOutcome:
        """Exact filter-and-refine probe: R-tree MBR candidates + PIP."""
        raise NotImplementedError

    def probe_shape_index(self, shape_index, regions, xs, ys, values) -> ProbeOutcome:
        """Exact probe: coarse-covering candidates + PIP refinement."""
        raise NotImplementedError

    def count_ranges(self, index, ranges) -> int:
        """Total point count of a code index over query-cell key ranges."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class PythonLoopEngine(ProbeEngine):
    """Per-point index-nested loops — the seed behaviour, kept as the oracle."""

    name = "python"

    def probe_act(self, trie, xs, ys, values, num_regions) -> ProbeOutcome:
        sums = np.zeros(num_regions, dtype=np.float64)
        counts = np.zeros(num_regions, dtype=np.int64)
        probes = 0
        for i in range(xs.shape[0]):
            matches = trie.lookup_point(float(xs[i]), float(ys[i]))
            probes += 1
            for polygon_id in matches:
                sums[polygon_id] += values[i]
                counts[polygon_id] += 1
        return ProbeOutcome(sums=sums, counts=counts, pip_tests=0, index_probes=probes)

    def probe_act_pairs(self, trie, xs, ys) -> tuple[np.ndarray, np.ndarray]:
        offsets = np.zeros(xs.shape[0] + 1, dtype=np.int64)
        matches: list[int] = []
        for i in range(xs.shape[0]):
            hits = trie.lookup_point(float(xs[i]), float(ys[i]))
            matches.extend(hits)
            offsets[i + 1] = offsets[i] + len(hits)
        return offsets, np.asarray(matches, dtype=np.int64)

    def probe_rtree(self, tree, regions, xs, ys, values) -> ProbeOutcome:
        return self._filter_refine(tree.query_point, regions, xs, ys, values)

    def probe_shape_index(self, shape_index, regions, xs, ys, values) -> ProbeOutcome:
        return self._filter_refine(shape_index.candidates, regions, xs, ys, values)

    @staticmethod
    def _filter_refine(candidates_fn, regions, xs, ys, values) -> ProbeOutcome:
        sums = np.zeros(len(regions), dtype=np.float64)
        counts = np.zeros(len(regions), dtype=np.int64)
        pip_tests = 0
        probes = 0
        for i in range(xs.shape[0]):
            x = float(xs[i])
            y = float(ys[i])
            probes += 1
            for polygon_id in candidates_fn(x, y):
                pip_tests += 1
                if point_in_region(x, y, regions[polygon_id]):
                    sums[polygon_id] += values[i]
                    counts[polygon_id] += 1
        return ProbeOutcome(sums=sums, counts=counts, pip_tests=pip_tests, index_probes=probes)

    def count_ranges(self, index, ranges) -> int:
        return index.count_ranges([(int(lo), int(hi)) for lo, hi in ranges])


class VectorizedEngine(ProbeEngine):
    """Batch backend: one fused numpy pipeline instead of per-point loops."""

    name = "vectorized"

    def probe_act(self, trie, xs, ys, values, num_regions) -> ProbeOutcome:
        offsets, polygon_ids = trie.lookup_points_batch(xs, ys)
        point_idx = np.repeat(np.arange(xs.shape[0], dtype=np.int64), np.diff(offsets))
        sums = np.zeros(num_regions, dtype=np.float64)
        # Unbuffered scatter-add in point-major order: bitwise identical to the
        # python loop because each polygon receives its additions in the same
        # (ascending point) order.
        np.add.at(sums, polygon_ids, values[point_idx])
        counts = np.bincount(polygon_ids, minlength=num_regions).astype(np.int64)
        return ProbeOutcome(
            sums=sums, counts=counts, pip_tests=0, index_probes=int(xs.shape[0])
        )

    def probe_act_pairs(self, trie, xs, ys) -> tuple[np.ndarray, np.ndarray]:
        return trie.lookup_points_batch(xs, ys)

    def probe_rtree(self, tree, regions, xs, ys, values) -> ProbeOutcome:
        offsets, candidate_ids = tree.query_points(xs, ys)
        return self._refine_and_aggregate(regions, offsets, candidate_ids, xs, ys, values)

    def probe_shape_index(self, shape_index, regions, xs, ys, values) -> ProbeOutcome:
        offsets, candidate_ids = shape_index.query_points(xs, ys)
        return self._refine_and_aggregate(regions, offsets, candidate_ids, xs, ys, values)

    @staticmethod
    def _refine_and_aggregate(regions, offsets, candidate_ids, xs, ys, values) -> ProbeOutcome:
        """Fused PIP refinement + aggregation over CSR candidate lists.

        The candidate pairs are regrouped by polygon so each polygon runs one
        vectorised PIP pass over all of its candidate points; the surviving
        pairs are then scattered into the aggregates in point-major order,
        which keeps the float accumulation identical to the python loop.
        """
        n = int(offsets.shape[0]) - 1
        num_pairs = int(candidate_ids.shape[0])
        sums = np.zeros(len(regions), dtype=np.float64)
        counts = np.zeros(len(regions), dtype=np.int64)
        if num_pairs == 0:
            return ProbeOutcome(sums=sums, counts=counts, pip_tests=0, index_probes=n)
        point_idx = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))

        # Group pairs by polygon (stable: point order survives inside groups).
        order = np.argsort(candidate_ids, kind="stable")
        grouped_ids = candidate_ids[order]
        grouped_pts = point_idx[order]
        boundaries = np.flatnonzero(np.diff(grouped_ids)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [num_pairs]))

        inside_grouped = np.empty(num_pairs, dtype=bool)
        for start, stop in zip(starts, stops):
            polygon_id = int(grouped_ids[start])
            pts = grouped_pts[start:stop]
            inside_grouped[start:stop] = regions[polygon_id].contains_points(xs[pts], ys[pts])

        # Back to point-major order, keep survivors, fuse the aggregation.
        inside = np.empty(num_pairs, dtype=bool)
        inside[order] = inside_grouped
        kept_ids = candidate_ids[inside]
        kept_pts = point_idx[inside]
        np.add.at(sums, kept_ids, values[kept_pts])
        counts = np.bincount(kept_ids, minlength=len(regions)).astype(np.int64)
        return ProbeOutcome(
            sums=sums, counts=counts, pip_tests=num_pairs, index_probes=n
        )

    def count_ranges(self, index, ranges) -> int:
        ranges = np.asarray(ranges, dtype=np.uint64).reshape(-1, 2)
        return index.count_ranges_batch(ranges)


_ENGINES: dict[str, ProbeEngine] = {
    "python": PythonLoopEngine(),
    "vectorized": VectorizedEngine(),
}


def get_engine(engine: "str | ProbeEngine | None") -> ProbeEngine:
    """Resolve an engine name (or pass an engine through); ``None`` → default."""
    if engine is None:
        return _ENGINES[DEFAULT_ENGINE]
    if isinstance(engine, ProbeEngine):
        return engine
    try:
        return _ENGINES[engine]
    except KeyError:
        raise QueryError(
            f"unknown probe engine {engine!r} (expected one of {', '.join(ENGINES)})"
        ) from None
