"""Plain-text reporting helpers for the benchmark harness.

Every benchmark prints the rows / series of the corresponding paper figure so
that EXPERIMENTS.md can quote them directly.  The helpers here render small
aligned tables and ratio summaries without pulling in any plotting
dependencies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_ratio", "print_table"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> None:
    """Print :func:`format_table` output (convenience for benchmarks)."""
    print()
    print(format_table(headers, rows, title=title))


def format_ratio(value: float, reference: float) -> str:
    """Render ``reference / value`` as a speedup factor string (e.g. ``"8.5x"``)."""
    if value <= 0:
        return "inf"
    return f"{reference / value:.1f}x"


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:,.4g}"
    return str(cell)
