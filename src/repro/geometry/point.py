"""Point and point-set primitives.

The library works in a planar Euclidean coordinate system.  Geographic
coordinates are assumed to have been projected (the synthetic NYC-like
workloads in :mod:`repro.data` use a local metric frame in metres), so the
Euclidean distance used throughout corresponds to physical distance and the
paper's distance bound ``epsilon`` can be stated in metres.

Two representations are provided:

* :class:`Point` — a tiny immutable value object used by the geometry kernel
  and the indexes when dealing with individual coordinates.
* :class:`PointSet` — a columnar, numpy-backed collection of points with
  optional per-point attributes, used by the query layer and the workload
  generators.  All bulk operations (rasterization, linearization, joins)
  operate on :class:`PointSet` so the heavy lifting stays vectorised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import GeometryError

__all__ = ["Point", "PointSet"]


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable 2D point.

    Parameters
    ----------
    x, y:
        Coordinates in the planar frame.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (avoids the square root)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


class PointSet:
    """A columnar collection of 2D points with optional numeric attributes.

    Parameters
    ----------
    xs, ys:
        Coordinate arrays of equal length.  They are converted to
        ``float64`` numpy arrays and are treated as immutable afterwards.
    attributes:
        Optional mapping from attribute name to a numeric array of the same
        length, e.g. the fare amount of a taxi trip.  Aggregation queries
        (``SUM``/``AVG``) reference attributes by name.

    Raises
    ------
    GeometryError
        If the coordinate arrays differ in length or an attribute array does
        not match the number of points.
    """

    __slots__ = ("xs", "ys", "_attributes")

    def __init__(
        self,
        xs: Iterable[float],
        ys: Iterable[float],
        attributes: Mapping[str, Iterable[float]] | None = None,
    ) -> None:
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        if self.xs.ndim != 1 or self.ys.ndim != 1:
            raise GeometryError("coordinate arrays must be one-dimensional")
        if self.xs.shape[0] != self.ys.shape[0]:
            raise GeometryError(
                f"coordinate arrays differ in length: {self.xs.shape[0]} vs {self.ys.shape[0]}"
            )
        self._attributes: dict[str, np.ndarray] = {}
        if attributes:
            for name, values in attributes.items():
                arr = np.asarray(values, dtype=np.float64)
                if arr.shape[0] != len(self):
                    raise GeometryError(
                        f"attribute {name!r} has {arr.shape[0]} values for {len(self)} points"
                    )
                self._attributes[name] = arr

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.xs.shape[0])

    def __iter__(self) -> Iterator[Point]:
        for x, y in zip(self.xs, self.ys):
            yield Point(float(x), float(y))

    def __getitem__(self, i: int) -> Point:
        return Point(float(self.xs[i]), float(self.ys[i]))

    # ------------------------------------------------------------------ #
    # attributes
    # ------------------------------------------------------------------ #
    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the per-point attributes carried by this set."""
        return tuple(self._attributes)

    def attribute(self, name: str) -> np.ndarray:
        """Return the attribute array called ``name``.

        Raises
        ------
        GeometryError
            If no attribute with that name exists.
        """
        try:
            return self._attributes[name]
        except KeyError:
            raise GeometryError(f"unknown attribute {name!r}") from None

    def with_attribute(self, name: str, values: Iterable[float]) -> "PointSet":
        """Return a copy of this set with an additional attribute column."""
        attrs = dict(self._attributes)
        attrs[name] = np.asarray(values, dtype=np.float64)
        return PointSet(self.xs, self.ys, attrs)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def coordinates(self) -> np.ndarray:
        """Return an ``(n, 2)`` array of coordinates (a copy)."""
        return np.column_stack([self.xs, self.ys])

    def select(self, mask: np.ndarray) -> "PointSet":
        """Return the subset of points where ``mask`` is true.

        ``mask`` may be a boolean mask or an integer index array; attributes
        are carried along.
        """
        attrs = {name: arr[mask] for name, arr in self._attributes.items()}
        return PointSet(self.xs[mask], self.ys[mask], attrs)

    def bounds(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``.

        Raises
        ------
        GeometryError
            If the set is empty (an empty set has no bounds).
        """
        if len(self) == 0:
            raise GeometryError("an empty point set has no bounds")
        return (
            float(self.xs.min()),
            float(self.ys.min()),
            float(self.xs.max()),
            float(self.ys.max()),
        )

    def concat(self, other: "PointSet") -> "PointSet":
        """Concatenate two point sets.

        Only attributes present in *both* sets are preserved; this mirrors a
        relational ``UNION ALL`` over the common columns.
        """
        common = set(self._attributes) & set(other._attributes)
        attrs = {
            name: np.concatenate([self._attributes[name], other._attributes[name]])
            for name in common
        }
        return PointSet(
            np.concatenate([self.xs, other.xs]),
            np.concatenate([self.ys, other.ys]),
            attrs,
        )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "PointSet":
        """Build a :class:`PointSet` from an iterable of :class:`Point`."""
        pts = list(points)
        return cls([p.x for p in pts], [p.y for p in pts])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PointSet(n={len(self)}, attributes={list(self._attributes)})"
