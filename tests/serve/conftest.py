"""Shared fixtures for the serving-layer suite."""

from __future__ import annotations

import pytest

from repro.api import SpatialDataset
from repro.store.store import SpatialStore


@pytest.fixture()
def store_dataset(workload, taxi_points, neighborhoods):
    """A store-backed dataset with one suite (fresh per test: serving mutates)."""
    store = SpatialStore.from_points(taxi_points, workload.frame(), 10)
    return SpatialDataset(store, extent=workload.extent).add_suite(
        "neighborhoods", neighborhoods
    )


@pytest.fixture()
def static_dataset(workload, taxi_points, neighborhoods):
    """A static-source dataset with one suite."""
    return SpatialDataset(
        taxi_points, frame=workload.frame(), extent=workload.extent
    ).add_suite("neighborhoods", neighborhoods)
