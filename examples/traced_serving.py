"""Traced serving: span trees, live server telemetry and a Perfetto export.

This example drives the whole observability layer end to end:

1. enable the tracer and run one batch query — `explain()` renders the
   nested span tree (plan → registry build → fused kernel), and the
   existing stage timings are views over the same spans;
2. serve a burst of concurrent joins under streaming ingest with a
   **periodic stats hook** — every 250 ms the server pushes a frozen
   `StatsSnapshot` (QPS, latency p50/p99 from log-bucketed histograms,
   batch occupancy, registry hit rate, store flush/compaction seconds);
3. write the recorded spans as **Chrome trace-event JSON** — drag
   ``traced_serving.json`` onto https://ui.perfetto.dev to see every
   server batch, kernel call and store flush on a timeline.

Run with::

    python examples/traced_serving.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import NYCWorkload, SpatialDataset
from repro.geometry.point import PointSet
from repro.obs import trace
from repro.serve import QueryServer
from repro.store.store import SpatialStore

EPSILON = 4.0
TRACE_PATH = "traced_serving.json"


def main() -> None:
    workload = NYCWorkload(seed=7)
    points = workload.taxi_points(60_000)
    regions = workload.neighborhoods(count=24)
    store = SpatialStore.from_points(points, workload.frame(), 12)
    dataset = SpatialDataset(store).add_suite("neighborhoods", regions)

    # -- 1. one traced batch query ------------------------------------------
    tracer = trace.enable()
    outcome = dataset.join("neighborhoods", strategy="act", epsilon=EPSILON)
    print("one traced query:")
    print(outcome.explain())
    root = outcome.spans
    accounted = sum(s.self_seconds for s in root.walk())
    print(f"  span self-times account for {accounted / root.seconds:.1%} of wall clock")
    print()

    # -- 2. a served burst with a periodic stats hook -----------------------
    def on_stats(snap) -> None:
        print(
            f"  [stats] qps={snap.qps:7.1f}  p50={snap.latency_p50_ms:6.2f}ms  "
            f"p99={snap.latency_p99_ms:6.2f}ms  occupancy={snap.batch_occupancy_mean:4.1f}  "
            f"registry hits={snap.registry['hits']}"
        )

    stop = threading.Event()
    rng = np.random.default_rng(7)
    box = store.frame.frame_box()

    def writer() -> None:
        while not stop.is_set():
            n = 500
            store.insert(
                PointSet(
                    rng.uniform(box.min_x, box.max_x, n),
                    rng.uniform(box.min_y, box.max_y, n),
                    {name: rng.uniform(0.0, 10.0, n) for name in store.attributes},
                )
            )
            stop.wait(0.005)

    print("serving a 2s concurrent burst (8 clients, streaming ingest):")
    ingest = threading.Thread(target=writer)
    ingest.start()
    try:
        with QueryServer(
            dataset,
            max_batch=16,
            max_wait_ms=2.0,
            stats_interval_seconds=0.25,
            stats_hook=on_stats,
        ) as server:

            def client() -> None:
                deadline = time.perf_counter() + 2.0
                while time.perf_counter() < deadline:
                    server.join(epsilon=EPSILON)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats
    finally:
        stop.set()
        ingest.join()
        trace.disable()

    print()
    print(
        f"served {stats.responses} responses in {stats.batches} batches "
        f"(mean occupancy {stats.batch_occupancy_mean:.1f}), "
        f"latency p50 {stats.latency_p50_ms:.2f}ms / p99 {stats.latency_p99_ms:.2f}ms"
    )
    hist = stats.as_dict()["histograms"]["kernel_seconds"]
    print(
        f"kernel histogram: {hist['count']} calls, "
        f"p50 {hist['p50'] * 1e3:.2f}ms, p99 {hist['p99'] * 1e3:.2f}ms"
    )

    # -- 3. Perfetto export -------------------------------------------------
    tracer.write_chrome(TRACE_PATH)
    spans = sum(1 for _ in tracer.walk())
    print()
    print(f"wrote {spans} spans to {TRACE_PATH} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
