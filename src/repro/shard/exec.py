"""Scatter-gather executors: serial fan-out and a persistent process pool.

The gather layer (:mod:`repro.shard.gather`) is executor-agnostic: it hands
an executor the resolved ACT index plus one coordinate block per shard and
gets back per-shard CSR probe results and per-shard probe seconds.  Two
implementations exist:

* :class:`SerialExecutor` — probes every shard in-process, in shard order.
  This is the default: deterministic, zero startup cost, and what parity
  tests and CI run.
* :class:`PoolExecutor` — a persistent ``ProcessPoolExecutor``.  The index
  is published **once** per (index, pool) pair through
  :mod:`repro.shard.shm` — its :meth:`~repro.index.FlatACT.state_arrays`
  are already flat buffers, so workers attach and reshape instead of
  unpickling — and each task ships only a shard's coordinate block (also
  via shared memory) plus two small manifests.  Workers keep an attached
  index cache across tasks, so a query fans out K tasks that all reuse the
  same mapped CSR buffers.

Both return **identical bits**: the probe kernels are deterministic
functions of (index arrays, coordinate arrays), and shared memory transports
both byte-exactly.  The pool prefers the ``fork`` start method (no module
re-import, instant startup) and falls back to ``spawn`` where fork is
unavailable.

Executors are processwide singletons — :func:`get_executor` hands out one
serial executor and one pool per worker count, torn down at interpreter
exit (:func:`shutdown_executors`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
import weakref
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.errors import QueryError
from repro.query.engine import get_engine
from repro.shard.shm import ShmBlock, attach_arrays, pack_arrays

__all__ = ["SerialExecutor", "PoolExecutor", "get_executor", "shutdown_executors"]

_EMPTY_CSR = (np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))


class SerialExecutor:
    """In-process fan-out: probe shards one after another (the default)."""

    name = "serial"
    workers = 0

    def probe_act(self, trie, shard_coords, engine=None):
        """Probe each shard's ``(xs, ys)`` block against one ACT index.

        Returns ``(results, seconds)``: per shard a CSR ``(offsets,
        polygon_ids)`` pair and the probe wall seconds.
        """
        probe_engine = get_engine(engine)
        results = []
        seconds = []
        for xs, ys in shard_coords:
            start = time.perf_counter()
            if xs.shape[0] == 0:
                results.append(_EMPTY_CSR)
            else:
                results.append(probe_engine.probe_act_pairs(trie, xs, ys))
            seconds.append(time.perf_counter() - start)
        return results, seconds

    def close(self) -> None:  # symmetric with PoolExecutor
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "SerialExecutor()"


# --------------------------------------------------------------------------- #
# pool workers (module-level so they pickle under spawn as well as fork)
# --------------------------------------------------------------------------- #

#: Worker-side cache of attached index blocks, keyed by segment name.  Small
#: cap: a worker typically sees one live index, plus stragglers during
#: registry turnover.
_WORKER_TRIE_CACHE: dict = {}
_WORKER_TRIE_CACHE_MAX = 4


def _worker_attached_trie(manifest, untrack):
    from repro.index.flat_act import FlatACT

    name = manifest[0]
    entry = _WORKER_TRIE_CACHE.get(name)
    if entry is None:
        if len(_WORKER_TRIE_CACHE) >= _WORKER_TRIE_CACHE_MAX:
            _, (old_block, _) = _WORKER_TRIE_CACHE.popitem()
            old_block.close()
        block = attach_arrays(manifest, untrack=untrack)
        entry = (block, FlatACT.from_state_arrays(block))
        _WORKER_TRIE_CACHE[name] = entry
    return entry[1]


def _worker_probe_act(trie_manifest, coords_manifest, engine_name, untrack):
    """Pool task: attach index + coordinates, probe, return CSR copies.

    The returned arrays are materialised copies (they leave shared memory
    through the result pipe); the coordinate block is closed per task, the
    index block stays cached.  ``untrack`` is true for spawned workers,
    whose private resource tracker must not adopt the parent's segments.
    """
    trie = _worker_attached_trie(trie_manifest, untrack)
    coords = attach_arrays(coords_manifest, untrack=untrack)
    try:
        start = time.perf_counter()
        offsets, pids = get_engine(engine_name).probe_act_pairs(
            trie, coords["xs"], coords["ys"]
        )
        elapsed = time.perf_counter() - start
        return np.array(offsets, dtype=np.int64), np.array(pids, dtype=np.int64), elapsed
    finally:
        coords.close()


class PoolExecutor:
    """Persistent process pool probing shards in parallel over shared memory."""

    name = "pool"

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 2:
            raise QueryError("a pool executor needs at least 2 workers")
        self.workers = workers
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        #: Published index blocks, keyed by ``id(flat_index)``.  The strong
        #: reference to the index keeps the id stable for its lifetime; the
        #: block is unlinked on eviction or shutdown.
        self._published: dict[int, tuple[object, ShmBlock]] = {}
        self._published_max = 4
        # Shuts the pool down and unlinks every published segment when the
        # executor is garbage collected or the interpreter exits, even if
        # close() is never called.  The callback holds the pool and the
        # (shared, mutated in place) published dict, never self.
        self._finalizer = weakref.finalize(
            self, PoolExecutor._release, self._pool, self._published
        )

    @staticmethod
    def _release(pool: ProcessPoolExecutor, published: dict) -> None:
        pool.shutdown(wait=True)
        for _, block in published.values():
            block.unlink()
        published.clear()

    def _publish(self, trie) -> tuple[str, dict]:
        flat = trie.flattened()
        entry = self._published.get(id(flat))
        if entry is None or entry[0] is not flat:
            if len(self._published) >= self._published_max:
                _, (_, old_block) = self._published.popitem()
                old_block.unlink()
            block = pack_arrays(flat.state_arrays(), name_hint="repro_act")
            self._published[id(flat)] = (flat, block)
            return block.manifest
        return entry[1].manifest

    def probe_act(self, trie, shard_coords, engine=None):
        """Parallel twin of :meth:`SerialExecutor.probe_act` (same contract)."""
        engine_name = get_engine(engine).name
        trie_manifest = self._publish(trie)
        futures = {}
        coord_blocks = []
        results = [_EMPTY_CSR] * len(shard_coords)
        seconds = [0.0] * len(shard_coords)
        try:
            for i, (xs, ys) in enumerate(shard_coords):
                if xs.shape[0] == 0:
                    continue  # nothing to ship for an empty shard
                block = pack_arrays({"xs": xs, "ys": ys}, name_hint="repro_pts")
                coord_blocks.append(block)
                futures[i] = self._pool.submit(
                    _worker_probe_act,
                    trie_manifest,
                    block.manifest,
                    engine_name,
                    self.start_method != "fork",
                )
            for i, future in futures.items():
                offsets, pids, elapsed = future.result()
                results[i] = (offsets, pids)
                seconds[i] = elapsed
        finally:
            for block in coord_blocks:
                block.unlink()
        return results, seconds

    def close(self) -> None:
        """Tear down the pool and release every published segment (idempotent)."""
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PoolExecutor(workers={self.workers}, start_method={self.start_method!r})"


# --------------------------------------------------------------------------- #
# executor registry
# --------------------------------------------------------------------------- #
_SERIAL = SerialExecutor()
_POOLS: dict[int, PoolExecutor] = {}


def get_executor(workers=None):
    """Resolve a worker count to a shared executor.

    ``None``/``0``/``1`` → the serial executor; ``K >= 2`` → a persistent
    ``K``-worker pool, created on first use and reused across queries.  An
    executor instance passes through unchanged.
    """
    if workers is None or workers in (0, 1):
        return _SERIAL
    if isinstance(workers, (SerialExecutor, PoolExecutor)):
        return workers
    workers = int(workers)
    if workers < 0:
        raise QueryError(f"invalid worker count {workers}")
    pool = _POOLS.get(workers)
    if pool is None:
        pool = PoolExecutor(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_executors() -> None:
    """Close every cached pool and unlink its shared-memory segments."""
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_executors)
