"""CSR assembly helpers shared by the batch probe indexes.

Every batch probe API (:meth:`FlatACT.lookup_points`,
:meth:`RStarTree.query_points`, :meth:`ShapeIndex.query_points`) produces its
matches as chunks of ``(point index, id)`` pairs and must return them in the
same point-major CSR layout — and in a *stable* order, because the engine's
bit-identical-aggregation guarantee depends on every polygon receiving its
float additions in ascending point order.  Centralising the assembly here
keeps the three probe paths from drifting apart.
"""

from __future__ import annotations

import numpy as np

__all__ = ["expand_slices", "csr_from_chunks", "isin_sorted"]


def isin_sorted(
    sorted_keys: np.ndarray, values: np.ndarray, return_positions: bool = False
):
    """Exact-membership mask of ``values`` in a sorted key array.

    One ``searchsorted`` plus an equality check on the landing positions —
    the shared membership kernel of the batch probe paths.  With
    ``return_positions`` the landing positions are returned alongside the
    mask so callers that need them (CSR postings lookups) avoid a second
    binary-search pass.
    """
    pos = np.searchsorted(sorted_keys, values)
    hit = pos < sorted_keys.shape[0]
    hit[hit] = sorted_keys[pos[hit]] == values[hit]
    if return_positions:
        return hit, pos
    return hit


def expand_slices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices covering every ``[starts[i], starts[i] + counts[i])`` slice.

    The standard exclusive-cumsum + repeat + arange idiom: the result
    concatenates all slices in order without a Python loop.
    """
    total = int(counts.sum())
    exclusive = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.repeat(starts - exclusive, counts) + np.arange(total, dtype=np.int64)


def csr_from_chunks(
    point_chunks: list[np.ndarray], id_chunks: list[np.ndarray], num_points: int
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble match chunks into point-major CSR ``(offsets, ids)``.

    ``point_chunks``/``id_chunks`` hold parallel arrays of point indices and
    matched ids.  The stable sort preserves the chunk order within one point,
    so callers control the per-point match order by the order they append
    chunks (e.g. coarse-to-fine levels).
    """
    offsets = np.zeros(num_points + 1, dtype=np.int64)
    if not id_chunks:
        return offsets, np.empty(0, dtype=np.int64)
    point_idx = np.concatenate(point_chunks)
    ids = np.concatenate(id_chunks)
    order = np.argsort(point_idx, kind="stable")
    ids = ids[order]
    np.cumsum(np.bincount(point_idx, minlength=num_points), out=offsets[1:])
    return offsets, ids
