"""Sharded updatable store: routed ingest over per-shard LSM stores.

A :class:`ShardedStore` owns one :class:`~repro.store.store.SpatialStore`
per tile of a :class:`~repro.shard.frame.ShardedFrame` and a single global
insertion-id sequence.  Ingest batches are routed per shard with one
vectorized :meth:`~repro.shard.frame.ShardedFrame.route_points` pass and
land in the member stores as explicit-id inserts, so the id space stays
**global**: any interleaving of sharded ingest produces exactly the ids an
unsharded store would assign, which is what makes every sharded query
mergeable bit for bit.

All member stores run on the **global frame and level** — the tiles decide
placement, never encoding — and share one
:class:`~repro.api.registry.IndexRegistry`, so a polygon suite's ACT index
is built once for all shards (member flushes invalidate only point-scoped
entries and leave it alone).

:class:`ShardedSnapshot` freezes all member snapshots in one pass — the
store is single-writer, so the combined view is one consistent cut of the
global id space — and answers queries by scatter-gather
(:mod:`repro.shard.gather`).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import StoreError
from repro.geometry.point import PointSet
from repro.grid.uniform_grid import GridFrame
from repro.query.spec import AggregationQuery
from repro.shard.frame import ShardedFrame
from repro.shard.gather import (
    ShardSegment,
    sharded_act_join,
    sharded_estimate_count_range,
)
from repro.store.store import SizeTieredCompaction, SpatialStore, StoreStats

__all__ = ["ShardedStore", "ShardedSnapshot"]


class ShardedSnapshot:
    """One consistent cut across all shard snapshots of a sharded store."""

    __slots__ = ("sharded_frame", "frame", "level", "shards", "_registry")

    def __init__(self, sharded_frame: ShardedFrame, level: int, shards, registry=None) -> None:
        self.sharded_frame = sharded_frame
        self.frame = sharded_frame.frame
        self.level = level
        self.shards = tuple(shards)
        self._registry = registry

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------ #
    # segment plumbing
    # ------------------------------------------------------------------ #
    def segments(self) -> list[list[ShardSegment]]:
        """Per shard, the probe-ready live segments (runs first, memtable last)."""
        return [
            [ShardSegment(ids, xs, ys, values) for ids, xs, ys, values in snap._segments()]
            for snap in self.shards
        ]

    # ------------------------------------------------------------------ #
    # query paths (scatter-gather over the member snapshots)
    # ------------------------------------------------------------------ #
    def act_join(
        self,
        regions,
        epsilon: float = 4.0,
        query: AggregationQuery | None = None,
        trie=None,
        engine=None,
        build_engine=None,
        executor=None,
    ):
        """ACT aggregation join, bit-identical to the unsharded snapshot path.

        Every shard probes the same registry-cached index; the match pairs
        carry global insertion ids, so the gather merge replays the exact
        addition sequence of :meth:`StoreSnapshot.act_join` over one
        unsharded store with the same ingest history.
        """
        result = sharded_act_join(
            self.segments(),
            regions,
            self.frame,
            epsilon=epsilon,
            query=query,
            trie=trie,
            engine=engine,
            build_engine=build_engine,
            executor=executor,
            registry=self._registry,
        )
        result.extra["num_runs"] = sum(len(snap.runs) for snap in self.shards)
        result.extra["memtable_points"] = sum(
            int(snap.mem_ids.shape[0]) for snap in self.shards
        )
        return result

    def count_in_ranges(self, ranges, engine=None) -> int:
        """Sum of the members' exact tombstone-corrected range counts."""
        return sum(snap.count_in_ranges(ranges, engine=engine) for snap in self.shards)

    def raster_count(
        self,
        region,
        cells_per_polygon: int,
        conservative: bool = True,
        engine=None,
        build_engine=None,
    ) -> int:
        """Approximate count in ``region``; one approximation, K fan-outs.

        The query cells are decomposed once on the global frame — every
        shard counts against identical key ranges, so the integer partials
        sum to exactly the unsharded answer.
        """
        from repro.approx.hierarchical_raster import HierarchicalRasterApproximation

        approx = HierarchicalRasterApproximation.from_cell_budget(
            region,
            self.frame,
            max_cells=cells_per_polygon,
            conservative=conservative,
            max_level=self.level,
            engine=build_engine,
        )
        ranges = approx.query_ranges(self.level)
        return self.count_in_ranges(ranges, engine=engine)

    def estimate_count_range(self, region, epsilon: float):
        """Certain COUNT interval; per-shard coverage counts sum exactly."""
        coords = [
            (xs, ys) for snap in self.shards for _, xs, ys, _ in snap._segments()
        ]
        return sharded_estimate_count_range(coords, region, epsilon)

    # ------------------------------------------------------------------ #
    # point-set views
    # ------------------------------------------------------------------ #
    @property
    def num_live(self) -> int:
        return sum(snap.num_live for snap in self.shards)

    def live_ids(self) -> np.ndarray:
        """Sorted insertion ids of every live point (global id space)."""
        if not self.shards:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate([snap.live_ids() for snap in self.shards]))

    def live_points(self) -> PointSet:
        """All live points merged into ascending global-id order.

        Identical (order included) to :meth:`StoreSnapshot.live_points` of
        an unsharded store with the same ingest history — the canonical
        rebuild order.
        """
        segments = [seg for snap in self.shards for seg in snap._segments()]
        names = list(self.shards[0].mem_values) if self.shards else []
        if not segments:
            return PointSet(np.empty(0), np.empty(0), {name: np.empty(0) for name in names})
        ids = np.concatenate([seg[0] for seg in segments])
        xs = np.concatenate([seg[1] for seg in segments])
        ys = np.concatenate([seg[2] for seg in segments])
        order = np.argsort(ids, kind="stable")
        values = {
            name: np.concatenate([seg[3][name] for seg in segments])[order] for name in names
        }
        return PointSet(xs[order], ys[order], values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ShardedSnapshot(shards={len(self.shards)}, live={self.num_live})"


class ShardedStore:
    """K routed LSM stores behind one global id space (see module docstring)."""

    def __init__(
        self,
        frame: GridFrame,
        level: int,
        shards: int,
        attributes: tuple[str, ...] = (),
        memtable_capacity: int = 8192,
        compaction: SizeTieredCompaction | None = None,
        auto_compact: bool = True,
        registry=None,
    ) -> None:
        if shards < 1:
            raise StoreError("a sharded store needs at least one shard")
        self.sharded_frame = ShardedFrame(frame, shards)
        self.frame = frame
        self.level = int(level)
        self.attributes = tuple(attributes)
        self._registry = registry
        self._stores = [
            SpatialStore(
                frame,
                level,
                attributes=self.attributes,
                memtable_capacity=memtable_capacity,
                compaction=compaction,
                auto_compact=auto_compact,
                registry=self.registry,
            )
            for _ in range(shards)
        ]
        self._next_id = 0
        # Guards the global id sequence and keeps a snapshot one consistent
        # cut across all member stores while another thread ingests.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(
        cls, points: PointSet, frame: GridFrame, level: int, shards: int, **kwargs
    ) -> "ShardedStore":
        """Bulk-load: one routed insert + flush (K single-run member stores)."""
        store = cls(frame, level, shards, attributes=points.attribute_names, **kwargs)
        store.insert(points)
        store.flush()
        return store

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.sharded_frame.num_shards

    def insert(self, points: PointSet) -> np.ndarray:
        """Route a batch across the shards; returns the assigned global ids.

        Ids come from the store-wide sequence, exactly as an unsharded store
        would assign them; each member receives its slice as an explicit-id
        insert in ascending order (the routing groups with a stable sort).
        """
        with self._lock:
            n = len(points)
            ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
            self._next_id += n
            if n == 0:
                return ids
            routes = self.sharded_frame.route_points(points.xs, points.ys)
            order = np.argsort(routes, kind="stable")
            counts = np.bincount(routes, minlength=self.num_shards)
            bounds = np.zeros(self.num_shards + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            for shard_id, store in enumerate(self._stores):
                indices = order[bounds[shard_id] : bounds[shard_id + 1]]
                if indices.shape[0] == 0:
                    continue
                store.insert(points.select(indices), ids=ids[indices])
            return ids

    def delete(self, ids) -> int:
        """Broadcast a delete; every id is recorded by exactly one shard.

        Members ignore ids they never held (buffered-membership check in the
        memtable, run-presence check before tombstoning), so the broadcast
        counts each deletion once no matter how the ids spread across
        shards.
        """
        with self._lock:
            return sum(store.delete(ids) for store in self._stores)

    def flush(self) -> int:
        """Flush every member memtable; returns how many produced a run."""
        with self._lock:
            return sum(1 for store in self._stores if store.flush() is not None)

    def compact(self, full: bool = False) -> int:
        """Run compaction on every member; returns total merges performed."""
        with self._lock:
            return sum(store.compact(full=full) for store in self._stores)

    # ------------------------------------------------------------------ #
    # index registry
    # ------------------------------------------------------------------ #
    @property
    def registry(self):
        """One :class:`~repro.api.registry.IndexRegistry` shared by all shards.

        The polygon-suite ACT index every shard probes is global-frame, so
        one cache entry serves the whole fan-out; member flushes invalidate
        only point-scoped entries, leaving it untouched.
        """
        if self._registry is None:
            from repro.api.registry import IndexRegistry

            self._registry = IndexRegistry()
        return self._registry

    def attach_registry(self, registry) -> None:
        """Share an external registry (e.g. a dataset's) with every shard."""
        self._registry = registry
        for store in self._stores:
            store.attach_registry(registry)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def snapshot(self) -> ShardedSnapshot:
        """Freeze all member states in one pass (single-writer store, so the
        member snapshots form one consistent cut of the global id space)."""
        with self._lock:
            return ShardedSnapshot(
                self.sharded_frame,
                self.level,
                (store.snapshot() for store in self._stores),
                registry=self.registry,
            )

    def act_join(self, regions, **kwargs):
        return self.snapshot().act_join(regions, **kwargs)

    def raster_count(self, region, cells_per_polygon, **kwargs) -> int:
        return self.snapshot().raster_count(region, cells_per_polygon, **kwargs)

    def estimate_count_range(self, region, epsilon):
        return self.snapshot().estimate_count_range(region, epsilon)

    def count_in_ranges(self, ranges, engine=None) -> int:
        return self.snapshot().count_in_ranges(ranges, engine=engine)

    def live_points(self) -> PointSet:
        return self.snapshot().live_points()

    def rebuilt(self, **kwargs) -> "ShardedStore":
        """A from-scratch sharded store over the current live point set."""
        return ShardedStore.from_points(
            self.live_points(), self.frame, self.level, self.num_shards, **kwargs
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> tuple[SpatialStore, ...]:
        return tuple(self._stores)

    @property
    def stats(self) -> StoreStats:
        """Member counters summed into one store-wide view."""
        combined = StoreStats()
        for store in self._stores:
            combined.inserts += store.stats.inserts
            combined.deletes += store.stats.deletes
            combined.flushes += store.stats.flushes
            combined.flushed_entries += store.stats.flushed_entries
            combined.compactions += store.stats.compactions
            combined.compacted_entries += store.stats.compacted_entries
            combined.purged_tombstones += store.stats.purged_tombstones
        return combined

    @property
    def num_live(self) -> int:
        return sum(store.num_live for store in self._stores)

    @property
    def num_runs(self) -> int:
        return sum(store.num_runs for store in self._stores)

    @property
    def num_tombstones(self) -> int:
        return sum(store.num_tombstones for store in self._stores)

    @property
    def memtable_size(self) -> int:
        return sum(store.memtable_size for store in self._stores)

    def memory_bytes(self) -> int:
        return sum(store.memory_bytes() for store in self._stores)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedStore(shards={self.num_shards}, live={self.num_live}, "
            f"runs={self.num_runs})"
        )
