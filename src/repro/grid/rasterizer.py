"""Software rasterizer.

The paper relies on the GPU rasterization pipeline to turn geometries into
fine-grained grid approximations "at interactive speeds".  This module is the
CPU substitute: it converts polygons and point sets into masks / histograms on
a :class:`~repro.grid.uniform_grid.UniformGrid`, with the same semantics a
GPU rasterizer provides plus a *conservative* mode.

Three rasterization rules are supported for polygons:

* ``center`` — a cell belongs to the polygon iff its centre is inside.  This
  is the standard GPU sample-at-pixel-centre rule and yields a
  *non-conservative* approximation (both false positives and false negatives
  possible, each within one cell of the boundary).
* ``conservative`` — every cell that overlaps the polygon at all is included,
  so only false positives are possible (paper §2.2).
* ``interior`` — only cells fully inside the polygon are included, so only
  false negatives are possible; the complement of the conservative boundary.

The returned :class:`RasterizedPolygon` exposes interior and boundary masks
separately because the result-range estimation of §6 needs the partial
aggregate over boundary cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ApproximationError
from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import UniformGrid

__all__ = [
    "RasterizedPolygon",
    "rasterize_polygon",
    "rasterize_points",
    "FillRule",
]

FillRule = str  # one of "center", "conservative", "interior"
_VALID_RULES = ("center", "conservative", "interior")


@dataclass(frozen=True, slots=True)
class RasterizedPolygon:
    """Raster masks of one region on a uniform grid.

    Attributes
    ----------
    grid:
        The grid frame the masks refer to.
    interior:
        Boolean mask, shape ``(ny, nx)``; cells fully inside the region.
    boundary:
        Boolean mask of cells crossed by the region boundary.
    """

    grid: UniformGrid
    interior: np.ndarray
    boundary: np.ndarray

    def coverage(self, rule: FillRule = "conservative", center_inside: np.ndarray | None = None) -> np.ndarray:
        """Mask of cells considered part of the region under ``rule``.

        For the ``center`` rule the caller must pass the centre-containment
        mask (it is not derivable from interior/boundary alone).
        """
        if rule == "conservative":
            return self.interior | self.boundary
        if rule == "interior":
            return self.interior
        if rule == "center":
            if center_inside is None:
                raise ApproximationError("center rule requires the centre-containment mask")
            return center_inside
        raise ApproximationError(f"unknown fill rule {rule!r}")

    @property
    def num_interior_cells(self) -> int:
        return int(self.interior.sum())

    @property
    def num_boundary_cells(self) -> int:
        return int(self.boundary.sum())


def _mark_segment_cells(
    grid: UniformGrid, mask: np.ndarray, x0: float, y0: float, x1: float, y1: float
) -> None:
    """Mark every cell whose interior the segment ``(x0, y0)-(x1, y1)`` crosses.

    The segment's crossings with the grid lines are computed exactly; the
    midpoint of every stretch between consecutive crossings identifies one
    crossed cell.  This supercover property is what makes *conservative*
    raster approximations truly conservative: no cell the boundary passes
    through can be missed, so false negatives are impossible (§2.2).

    This is the one-segment-per-call oracle; :func:`rasterize_polygon` runs
    the batched :func:`_mark_segments_cells` kernel, which marks the
    identical cell set for all segments in one pass.
    """
    ts = [0.0, 1.0]
    dx = x1 - x0
    dy = y1 - y0
    if dx != 0.0:
        lo, hi = (x0, x1) if x0 < x1 else (x1, x0)
        first = int(np.ceil((lo - grid.extent.min_x) / grid.cell_width))
        last = int(np.floor((hi - grid.extent.min_x) / grid.cell_width))
        if last >= first:
            lines = grid.extent.min_x + np.arange(first, last + 1) * grid.cell_width
            crossings = (lines - x0) / dx
            ts.extend(crossings[(crossings > 0.0) & (crossings < 1.0)].tolist())
    if dy != 0.0:
        lo, hi = (y0, y1) if y0 < y1 else (y1, y0)
        first = int(np.ceil((lo - grid.extent.min_y) / grid.cell_height))
        last = int(np.floor((hi - grid.extent.min_y) / grid.cell_height))
        if last >= first:
            lines = grid.extent.min_y + np.arange(first, last + 1) * grid.cell_height
            crossings = (lines - y0) / dy
            ts.extend(crossings[(crossings > 0.0) & (crossings < 1.0)].tolist())
    t = np.unique(np.asarray(ts, dtype=np.float64))
    mids = (t[:-1] + t[1:]) / 2.0 if t.shape[0] > 1 else np.array([0.5])
    xs = x0 + mids * dx
    ys = y0 + mids * dy
    # Only mark cells whose midpoint actually lies inside the grid extent.
    inside = grid.extent.contains_points(xs, ys)
    if inside.any():
        ix, iy = grid.points_to_cells(xs[inside], ys[inside])
        mask[iy, ix] = True


def _boundary_segment_array(region: Polygon | MultiPolygon) -> np.ndarray:
    """Boundary segments of a region as an ``(m, 4)`` array of ``(x0, y0, x1, y1)``."""
    rows = [
        (seg.start.x, seg.start.y, seg.end.x, seg.end.y)
        for seg in region.boundary_segments()
    ]
    return np.asarray(rows, dtype=np.float64).reshape(-1, 4)


def _grid_line_crossings(
    origin: float, step: float, c0: np.ndarray, c1: np.ndarray, delta: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment parameters of the crossings with one family of grid lines.

    ``c0``/``c1`` are the segments' start/end coordinates along the axis
    perpendicular to the lines and ``delta = c1 - c0``.  Returns parallel
    ``(segment index, t)`` arrays of the crossings with ``0 < t < 1``.  The
    line coordinates and the division are evaluated with exactly the
    arithmetic of the scalar :func:`_mark_segment_cells`, so the batched
    kernel reproduces its floats bit for bit.
    """
    # Deferred import mirroring _scanline_fill_polygon: repro.index reaches
    # this module through the approx package at init time.
    from repro.index.csr import expand_slices

    lo = np.minimum(c0, c1)
    hi = np.maximum(c0, c1)
    first = np.ceil((lo - origin) / step).astype(np.int64)
    last = np.floor((hi - origin) / step).astype(np.int64)
    counts = np.maximum(last - first + 1, 0)
    # Segments parallel to this line family never cross it.
    counts[delta == 0.0] = 0
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(np.float64)
    seg = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
    line_index = expand_slices(first, counts)
    lines = origin + line_index * step
    t = (lines - c0[seg]) / delta[seg]
    keep = (t > 0.0) & (t < 1.0)
    return seg[keep], t[keep]


def _mark_segments_cells(grid: UniformGrid, mask: np.ndarray, segs: np.ndarray) -> None:
    """Batched :func:`_mark_segment_cells` over an ``(m, 4)`` segment array.

    The last per-segment Python loop of the build layer: every segment's
    grid-line crossing parameters are generated in one global ``(segment,
    t)`` pair list, sorted and deduplicated per segment, and the midpoints of
    consecutive stretches identify the crossed cells — the same supercover
    construction as the scalar oracle, evaluated with identical float
    arithmetic, so the marked cell set is bit-identical.
    """
    m = segs.shape[0]
    if m == 0:
        return
    x0, y0, x1, y1 = segs[:, 0], segs[:, 1], segs[:, 2], segs[:, 3]
    dx = x1 - x0
    dy = y1 - y0

    # Endpoint parameters 0 and 1 for every segment, plus the vertical and
    # horizontal grid-line crossings in (0, 1).  The true endpoints are
    # passed through (not reconstructed as c0 + delta, which can differ by
    # an ulp), keeping the lo/hi arithmetic identical to the scalar oracle.
    seg_ids = [np.repeat(np.arange(m, dtype=np.int64), 2)]
    ts = [np.tile(np.array([0.0, 1.0]), m)]
    for origin, step, c0, c1, delta in (
        (grid.extent.min_x, grid.cell_width, x0, x1, dx),
        (grid.extent.min_y, grid.cell_height, y0, y1, dy),
    ):
        seg, t = _grid_line_crossings(origin, step, c0, c1, delta)
        seg_ids.append(seg)
        ts.append(t)
    seg = np.concatenate(seg_ids)
    t = np.concatenate(ts)

    # Sort by (segment, t) and drop duplicate parameters within a segment —
    # the batched twin of the scalar kernel's np.unique over one segment's
    # crossing list.
    order = np.lexsort((t, seg))
    seg = seg[order]
    t = t[order]
    uniq = np.ones(t.shape[0], dtype=bool)
    uniq[1:] = (seg[1:] != seg[:-1]) | (t[1:] != t[:-1])
    seg = seg[uniq]
    t = t[uniq]

    # Midpoints of consecutive stretches within each segment.  Every segment
    # keeps at least t = 0 and t = 1, so each has at least one stretch.
    same = seg[1:] == seg[:-1]
    mid_seg = seg[:-1][same]
    mids = (t[:-1][same] + t[1:][same]) / 2.0

    xs = x0[mid_seg] + mids * dx[mid_seg]
    ys = y0[mid_seg] + mids * dy[mid_seg]
    # Only mark cells whose midpoint actually lies inside the grid extent.
    inside = grid.extent.contains_points(xs, ys)
    if inside.any():
        ix, iy = grid.points_to_cells(xs[inside], ys[inside])
        mask[iy, ix] = True


def _polygon_edges(poly: Polygon) -> np.ndarray:
    """All ring edges of a polygon as an ``(m, 4)`` array of ``(x1, y1, x2, y2)``."""
    rows = []
    for ring in poly.rings():
        coords = ring.coords
        nxt = np.roll(coords, -1, axis=0)
        rows.append(np.column_stack([coords, nxt]))
    return np.vstack(rows)


def _scanline_fill_polygon(grid: UniformGrid, poly: Polygon, mask: np.ndarray) -> None:
    """Even-odd scanline fill of one polygon at cell-centre sampling.

    The crossings of every polygon edge (exterior and holes) with every row's
    centre line are computed in one batch over (edge, row) pairs, sorted per
    row, paired even-odd and written as column spans through a difference
    plane — the classic active-edge fill, fully vectorised.  Counting hole
    edges together with exterior edges makes the even-odd rule carve holes
    out automatically.  The cost is ``O(crossings log crossings + window
    area)`` with numpy constants, which is what makes canvas-resolution
    rasterization feasible for the Bounded Raster Join (the canvas build
    phase of one tile is exactly this fill run per polygon).
    """
    box = poly.bounds().intersection(grid.extent)
    if box is None:
        return
    edges = _polygon_edges(poly)
    x1 = edges[:, 0]
    y1 = edges[:, 1]
    x2 = edges[:, 2]
    y2 = edges[:, 3]
    _, iy0, _, iy1 = grid.cells_overlapping(box)
    centers_x0 = grid.extent.min_x + 0.5 * grid.cell_width

    # Candidate row range per edge (generous by construction); the exact
    # centre-line crossing condition is re-checked on the expanded pairs, so
    # the fill matches the per-row formulation bit for bit.
    y_lo = np.minimum(y1, y2)
    y_hi = np.maximum(y1, y2)
    row_from = np.clip(
        np.floor((y_lo - grid.extent.min_y) / grid.cell_height - 0.5).astype(np.int64),
        iy0,
        iy1 + 1,
    )
    row_to = np.clip(
        np.ceil((y_hi - grid.extent.min_y) / grid.cell_height + 0.5).astype(np.int64),
        iy0 - 1,
        iy1,
    )
    # Deferred import: repro.index reaches this module through the approx
    # package at init time, so a top-level import of repro.index.csr would be
    # circular (same pattern as HierarchicalRasterApproximation.covers_points).
    from repro.index.csr import expand_slices

    counts = np.maximum(row_to - row_from + 1, 0)
    if int(counts.sum()) == 0:
        return
    pair_edge = np.repeat(np.arange(edges.shape[0]), counts)
    pair_row = expand_slices(row_from, counts)

    yc = grid.extent.min_y + (pair_row + 0.5) * grid.cell_height
    ya = y1[pair_edge]
    yb = y2[pair_edge]
    crossing = (ya > yc) != (yb > yc)
    if not crossing.any():
        return
    pair_row = pair_row[crossing]
    e = pair_edge[crossing]
    yc = yc[crossing]
    x_cross = x1[e] + (yc - y1[e]) * (x2[e] - x1[e]) / (y2[e] - y1[e])

    # Sort crossings by (row, x) and pair them even-odd within each row.
    order = np.lexsort((x_cross, pair_row))
    rows_sorted = pair_row[order]
    x_sorted = x_cross[order]
    row_start = np.ones(rows_sorted.shape[0], dtype=bool)
    row_start[1:] = rows_sorted[1:] != rows_sorted[:-1]
    rank = np.arange(rows_sorted.shape[0]) - np.repeat(
        np.flatnonzero(row_start), np.diff(np.append(np.flatnonzero(row_start), rows_sorted.shape[0]))
    )
    is_left = (rank % 2 == 0) & np.append(~row_start[1:], False)
    lefts = x_sorted[is_left]
    rights = x_sorted[np.flatnonzero(is_left) + 1]
    span_rows = rows_sorted[is_left]

    # Columns whose centre lies in (left, right), via a difference plane.
    i_from = np.maximum(np.ceil((lefts - centers_x0) / grid.cell_width).astype(np.int64), 0)
    i_to = np.minimum(np.floor((rights - centers_x0) / grid.cell_width).astype(np.int64), grid.nx - 1)
    valid = i_to >= i_from
    if not valid.any():
        return
    i_from = i_from[valid]
    i_to = i_to[valid]
    span_rows = span_rows[valid]
    # Difference plane over the polygon's row window only.
    delta = np.zeros((iy1 - iy0 + 1, grid.nx + 1), dtype=np.int32)
    np.add.at(delta, (span_rows - iy0, i_from), 1)
    np.add.at(delta, (span_rows - iy0, i_to + 1), -1)
    mask[iy0 : iy1 + 1] |= np.cumsum(delta[:, :-1], axis=1) > 0


def _center_fill(grid: UniformGrid, region: Polygon | MultiPolygon) -> np.ndarray:
    """Centre-containment mask over the cells overlapping the region bounds."""
    mask = np.zeros((grid.ny, grid.nx), dtype=bool)
    box = region.bounds().intersection(grid.extent)
    if box is None:
        return mask
    polygons = region.polygons if isinstance(region, MultiPolygon) else (region,)
    for poly in polygons:
        _scanline_fill_polygon(grid, poly, mask)
    return mask


def rasterize_polygon(region: Polygon | MultiPolygon, grid: UniformGrid) -> tuple[RasterizedPolygon, np.ndarray]:
    """Rasterize a region onto ``grid``.

    Returns
    -------
    (RasterizedPolygon, numpy.ndarray)
        The raster masks plus the centre-containment mask (used for the
        ``center`` fill rule and by the accuracy analysis).
    """
    center_inside = _center_fill(grid, region)
    boundary = np.zeros((grid.ny, grid.nx), dtype=bool)
    segs = _boundary_segment_array(region)
    if segs.shape[0]:
        # Bounding-box prefilter (vectorised twin of the old per-segment
        # extent check), then one batched supercover pass over the survivors.
        overlaps = ~(
            (np.minimum(segs[:, 0], segs[:, 2]) > grid.extent.max_x)
            | (np.maximum(segs[:, 0], segs[:, 2]) < grid.extent.min_x)
            | (np.minimum(segs[:, 1], segs[:, 3]) > grid.extent.max_y)
            | (np.maximum(segs[:, 1], segs[:, 3]) < grid.extent.min_y)
        )
        _mark_segments_cells(grid, boundary, segs[overlaps])
    interior = center_inside & ~boundary
    return RasterizedPolygon(grid=grid, interior=interior, boundary=boundary), center_inside


def rasterize_points(
    xs: np.ndarray,
    ys: np.ndarray,
    grid: UniformGrid,
    weights: np.ndarray | None = None,
    clip: bool = False,
) -> np.ndarray:
    """Accumulate points into a per-cell aggregate plane.

    This mirrors the paper's "blend all the points into a single canvas that
    maintains partial aggregates" step of the Bounded Raster Join: each cell
    of the returned ``(ny, nx)`` array holds the count (or the sum of
    ``weights``) of the points that fall into it.

    Points outside the grid extent are clamped to the border cells by default
    (matching the vectorised cell transform); pass ``clip=True`` to drop them
    instead, which is what a viewport-limited visualization wants.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != xs.shape[0]:
            raise ApproximationError("weights must match the number of points")
    if clip:
        keep = grid.extent.contains_points(xs, ys)
        xs = xs[keep]
        ys = ys[keep]
        if weights is not None:
            weights = weights[keep]
    ix, iy = grid.points_to_cells(xs, ys)
    flat = grid.flatten(ix, iy)
    plane = np.bincount(flat, weights=weights, minlength=grid.num_cells)
    return plane.reshape(grid.ny, grid.nx)


def boundary_cell_boxes(raster: RasterizedPolygon) -> list[BoundingBox]:
    """World-space boxes of the boundary cells of a rasterized region."""
    ys, xs = np.nonzero(raster.boundary)
    return [raster.grid.cell_box(int(ix), int(iy)) for ix, iy in zip(xs, ys)]
