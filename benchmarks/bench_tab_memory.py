"""TAB-MEM — index memory footprint (§5.1).

The paper quotes, for the Neighborhoods suite: ACT's 4 m-bounded approximation
holds 13.2M cells and occupies 143 MB, Google's S2ShapeIndex with its coarser
covering occupies 1.2 MB, and the R*-tree over MBRs just 27.9 KB — the
precision/space trade-off that buys ACT its approximate, PIP-free execution.

This benchmark builds the three indexes over the synthetic Neighborhoods
suite, times the builds, and prints the footprint table.  Absolute sizes are
smaller (the workload is scaled down), but the ordering and the orders-of-
magnitude gaps are the reproduction target.
"""

from __future__ import annotations

import pytest

from repro.bench import print_table
from repro.index import AdaptiveCellTrie, RStarTree, ShapeIndex

ACT_EPSILON = 4.0


def test_tab_memory_act(benchmark, neighborhoods, frame):
    trie = benchmark.pedantic(
        AdaptiveCellTrie.build,
        args=(neighborhoods, frame),
        kwargs={"epsilon": ACT_EPSILON},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {"memory_bytes": trie.memory_bytes(), "cells": trie.num_cells, "epsilon": ACT_EPSILON}
    )


def test_tab_memory_shape_index(benchmark, neighborhoods, frame):
    index = benchmark.pedantic(
        ShapeIndex,
        args=(neighborhoods, frame),
        kwargs={"max_cells_per_shape": 32},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({"memory_bytes": index.memory_bytes(), "cells": index.num_cells})


def test_tab_memory_rstar(benchmark, neighborhoods):
    tree = benchmark.pedantic(
        RStarTree.bulk_load_boxes,
        args=([region.bounds() for region in neighborhoods],),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({"memory_bytes": tree.memory_bytes()})


def test_tab_memory_summary(benchmark, neighborhoods, frame):
    """Builds all three and prints the paper-style table with size ratios."""

    def build_all():
        trie = AdaptiveCellTrie.build(neighborhoods, frame, epsilon=ACT_EPSILON)
        shape = ShapeIndex(neighborhoods, frame, max_cells_per_shape=32)
        rstar = RStarTree.bulk_load_boxes([region.bounds() for region in neighborhoods])
        return trie, shape, rstar

    trie, shape, rstar = benchmark.pedantic(build_all, rounds=1, iterations=1)
    act_bytes = trie.memory_bytes()
    shape_bytes = shape.memory_bytes()
    rstar_bytes = rstar.memory_bytes()

    print_table(
        ["index", "approximation", "cells", "memory"],
        [
            ["ACT (4 m bound)", "distance-bounded HR", trie.num_cells, _fmt_bytes(act_bytes)],
            ["S2ShapeIndex-like", "coarse HR covering", shape.num_cells, _fmt_bytes(shape_bytes)],
            ["R*-tree", "MBR", len(neighborhoods), _fmt_bytes(rstar_bytes)],
        ],
        title="TAB-MEM  Index memory for the Neighborhoods suite (paper: 143 MB / 1.2 MB / 27.9 KB)",
    )
    benchmark.extra_info.update(
        {
            "act_bytes": act_bytes,
            "shape_index_bytes": shape_bytes,
            "rstar_bytes": rstar_bytes,
            "act_over_shape": round(act_bytes / max(shape_bytes, 1), 1),
            "shape_over_rstar": round(shape_bytes / max(rstar_bytes, 1), 1),
        }
    )

    # The paper's ordering: ACT >> SI >> R*-tree.
    assert act_bytes > 10 * shape_bytes
    assert shape_bytes > rstar_bytes


def _fmt_bytes(num: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if num < 1024:
            return f"{num:.1f} {unit}"
        num /= 1024
    return f"{num:.1f} TB"
