"""Uniform grids and the canonical grid hierarchy.

Two related frames are defined here:

* :class:`UniformGrid` — an ``nx x ny`` grid of equal cells over an arbitrary
  rectangular extent.  This is the frame of the rasterized canvas (§4) and of
  uniform raster approximations (Figure 1(b)).
* :class:`GridFrame` — a square, power-of-two hierarchy of grids anchored on a
  data extent.  Level ``l`` has ``2**l`` cells per side; cells are addressed
  with Morton / Hilbert codes and hierarchical :class:`~repro.curves.cellid.CellId`
  values.  Hierarchical raster approximations (Figure 1(c)) and the point
  linearization of §3 both live in this frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ApproximationError, GeometryError
from repro.curves.cellid import CellId
from repro.curves.morton import MAX_LEVEL, morton_encode_array
from repro.geometry.bbox import BoundingBox

__all__ = ["UniformGrid", "GridFrame"]


@dataclass(frozen=True, slots=True)
class UniformGrid:
    """An ``nx x ny`` uniform grid over ``extent``.

    Cells are addressed by integer column/row indices ``(ix, iy)`` with
    ``(0, 0)`` at the lower-left corner of the extent.
    """

    extent: BoundingBox
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise GeometryError("grid resolution must be positive")
        if self.extent.width <= 0 or self.extent.height <= 0:
            raise GeometryError("grid extent must have positive area")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_cell_size(cls, extent: BoundingBox, cell_size: float) -> "UniformGrid":
        """Grid whose cells are at most ``cell_size`` on each side."""
        if cell_size <= 0:
            raise ApproximationError("cell size must be positive")
        nx = max(1, int(math.ceil(extent.width / cell_size)))
        ny = max(1, int(math.ceil(extent.height / cell_size)))
        return cls(extent, nx, ny)

    # ------------------------------------------------------------------ #
    # cell geometry
    # ------------------------------------------------------------------ #
    @property
    def cell_width(self) -> float:
        return self.extent.width / self.nx

    @property
    def cell_height(self) -> float:
        return self.extent.height / self.ny

    @property
    def cell_diagonal(self) -> float:
        """Length of a cell diagonal — the worst-case distance error of a cell."""
        return math.hypot(self.cell_width, self.cell_height)

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny

    def cell_box(self, ix: int, iy: int) -> BoundingBox:
        """Bounding box of cell ``(ix, iy)``."""
        x0 = self.extent.min_x + ix * self.cell_width
        y0 = self.extent.min_y + iy * self.cell_height
        return BoundingBox(x0, y0, x0 + self.cell_width, y0 + self.cell_height)

    def cell_center(self, ix: int, iy: int) -> tuple[float, float]:
        """Centre coordinates of cell ``(ix, iy)``."""
        return (
            self.extent.min_x + (ix + 0.5) * self.cell_width,
            self.extent.min_y + (iy + 0.5) * self.cell_height,
        )

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Meshgrid of all cell-centre coordinates, shaped ``(ny, nx)``."""
        xs = self.extent.min_x + (np.arange(self.nx) + 0.5) * self.cell_width
        ys = self.extent.min_y + (np.arange(self.ny) + 0.5) * self.cell_height
        return np.meshgrid(xs, ys)

    # ------------------------------------------------------------------ #
    # world <-> cell transforms
    # ------------------------------------------------------------------ #
    def point_to_cell(self, x: float, y: float) -> tuple[int, int]:
        """Cell containing ``(x, y)`` (clamped to the grid)."""
        ix = int((x - self.extent.min_x) / self.cell_width)
        iy = int((y - self.extent.min_y) / self.cell_height)
        return (min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1))

    def points_to_cells(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`point_to_cell`."""
        ix = np.floor((np.asarray(xs) - self.extent.min_x) / self.cell_width).astype(np.int64)
        iy = np.floor((np.asarray(ys) - self.extent.min_y) / self.cell_height).astype(np.int64)
        np.clip(ix, 0, self.nx - 1, out=ix)
        np.clip(iy, 0, self.ny - 1, out=iy)
        return ix, iy

    def cells_overlapping(self, box: BoundingBox) -> tuple[int, int, int, int]:
        """Inclusive cell-index range ``(ix0, iy0, ix1, iy1)`` overlapping ``box``."""
        ix0, iy0 = self.point_to_cell(box.min_x, box.min_y)
        ix1, iy1 = self.point_to_cell(box.max_x, box.max_y)
        return ix0, iy0, ix1, iy1

    def flatten(self, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        """Row-major flat cell index used by histogramming code."""
        return np.asarray(iy) * self.nx + np.asarray(ix)


class GridFrame:
    """A square power-of-two grid hierarchy anchored on a data extent.

    The frame takes an arbitrary extent and embeds it into a square whose side
    is the larger of the extent's width and height (plus an optional margin),
    so that every level of the hierarchy consists of square cells and
    Morton / Hilbert codes are well defined.

    Parameters
    ----------
    extent:
        Data extent to cover.
    margin_fraction:
        Fractional padding added around the extent so that points exactly on
        the boundary never fall outside the frame after floating-point
        round-off.
    """

    __slots__ = ("origin_x", "origin_y", "size")

    def __init__(self, extent: BoundingBox, margin_fraction: float = 1e-9) -> None:
        if extent.width <= 0 and extent.height <= 0:
            raise GeometryError("grid frame extent must have positive size")
        side = max(extent.width, extent.height)
        side *= 1.0 + margin_fraction
        self.origin_x = extent.min_x
        self.origin_y = extent.min_y
        self.size = side

    @classmethod
    def from_raw(cls, origin_x: float, origin_y: float, size: float) -> "GridFrame":
        """Reconstruct a frame from its stored parameters, bit-exactly.

        Persistence formats (FlatACT / store-run ``.npz`` files) serialise a
        frame as ``(origin_x, origin_y, size)``; this constructor restores the
        exact same hierarchy — no margin is re-applied, so every cell boundary
        and point linearization of the saved frame is reproduced bit for bit.
        """
        if size <= 0:
            raise GeometryError("grid frame size must be positive")
        frame = cls.__new__(cls)
        frame.origin_x = float(origin_x)
        frame.origin_y = float(origin_y)
        frame.size = float(size)
        return frame

    # ------------------------------------------------------------------ #
    # level geometry
    # ------------------------------------------------------------------ #
    def cell_side(self, level: int) -> float:
        """Side length of a cell at ``level``."""
        return self.size / (1 << level)

    def cell_diagonal(self, level: int) -> float:
        """Diagonal length of a cell at ``level``."""
        return self.cell_side(level) * math.sqrt(2.0)

    def level_for_cell_side(self, max_side: float) -> int:
        """Finest level whose cells are no wider than ``max_side``.

        This is how a distance bound ``epsilon`` is converted into a grid
        level: boundary cells must have a diagonal of at most ``epsilon``, so
        their side must be at most ``epsilon / sqrt(2)``.

        Raises
        ------
        ApproximationError
            If ``max_side`` is not positive or would require a level beyond
            :data:`~repro.curves.morton.MAX_LEVEL`.
        """
        if max_side <= 0:
            raise ApproximationError("cell side bound must be positive")
        if max_side >= self.size:
            return 0
        level = int(math.ceil(math.log2(self.size / max_side)))
        if level > MAX_LEVEL:
            raise ApproximationError(
                f"distance bound requires level {level} > maximum {MAX_LEVEL}"
            )
        return level

    # ------------------------------------------------------------------ #
    # world <-> cell transforms
    # ------------------------------------------------------------------ #
    def point_to_xy(self, x: float, y: float, level: int) -> tuple[int, int]:
        """Grid coordinates of the cell containing ``(x, y)`` at ``level``."""
        n = 1 << level
        side = self.cell_side(level)
        ix = int((x - self.origin_x) / side)
        iy = int((y - self.origin_y) / side)
        return (min(max(ix, 0), n - 1), min(max(iy, 0), n - 1))

    def point_to_cell(self, x: float, y: float, level: int) -> CellId:
        """The :class:`CellId` of the cell containing ``(x, y)`` at ``level``."""
        ix, iy = self.point_to_xy(x, y, level)
        return CellId.from_xy(ix, iy, level)

    def points_to_codes(self, xs: np.ndarray, ys: np.ndarray, level: int) -> np.ndarray:
        """Morton codes at ``level`` of many points (vectorised).

        This is the linearization step of §3: 2D points become 1D keys that a
        sorted array, B+-tree or RadixSpline can index.

        Out-of-frame points are *clamped* onto the edge cells, so the codes of
        such points alias cells they do not lie in.  Probe paths that must not
        produce false positives (the conservativity guarantee errs only within
        ``epsilon`` of a boundary, never frame-widths away) have to mask with
        :meth:`contains_points` before trusting the codes.
        """
        n = 1 << level
        side = self.cell_side(level)
        ix = np.floor((np.asarray(xs) - self.origin_x) / side).astype(np.int64)
        iy = np.floor((np.asarray(ys) - self.origin_y) / side).astype(np.int64)
        np.clip(ix, 0, n - 1, out=ix)
        np.clip(iy, 0, n - 1, out=iy)
        return morton_encode_array(ix, iy, level)

    # ------------------------------------------------------------------ #
    # frame membership
    # ------------------------------------------------------------------ #
    def contains_point(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside the frame (closed on all edges).

        Points exactly on the max edge belong to the frame: the cell
        transforms clamp them into the last row/column of cells, which is the
        cell a conservative approximation of an edge-touching region covers.
        """
        return (
            self.origin_x <= x <= self.origin_x + self.size
            and self.origin_y <= y <= self.origin_y + self.size
        )

    def contains_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains_point`; returns a boolean mask."""
        xs = np.asarray(xs)
        ys = np.asarray(ys)
        return (
            (xs >= self.origin_x)
            & (xs <= self.origin_x + self.size)
            & (ys >= self.origin_y)
            & (ys <= self.origin_y + self.size)
        )

    def cell_box(self, cell: CellId) -> BoundingBox:
        """World-space bounding box of a cell."""
        ix, iy = cell.to_xy()
        side = self.cell_side(cell.level)
        x0 = self.origin_x + ix * side
        y0 = self.origin_y + iy * side
        return BoundingBox(x0, y0, x0 + side, y0 + side)

    def cell_center(self, cell: CellId) -> tuple[float, float]:
        """World-space centre of a cell."""
        box = self.cell_box(cell)
        c = box.center
        return (c.x, c.y)

    def root(self) -> CellId:
        """The level-0 cell covering the whole frame."""
        return CellId(0, 0)

    def frame_box(self) -> BoundingBox:
        """The square extent of the frame."""
        return BoundingBox(
            self.origin_x,
            self.origin_y,
            self.origin_x + self.size,
            self.origin_y + self.size,
        )

    def uniform_grid(self, level: int) -> UniformGrid:
        """The uniform grid corresponding to one hierarchy level."""
        n = 1 << level
        return UniformGrid(self.frame_box(), n, n)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GridFrame(origin=({self.origin_x:g}, {self.origin_y:g}), size={self.size:g})"
