"""Concurrent serving layer: micro-batched query coalescing.

:class:`QueryServer` accepts concurrent point-lookup, join, raster-count and
range-estimate requests against a :class:`~repro.api.SpatialDataset`,
coalesces compatible requests within a bounded window into one fused kernel
call, and scatters per-request results back — each response bit-identical to
running that request alone against the snapshot it was pinned to.

Quick start::

    with dataset.serve(max_batch=32, max_wait_ms=2.0) as server:
        futures = [server.submit_join(epsilon=4.0) for _ in range(16)]
        responses = [f.result() for f in futures]
        print(responses[0].explain())
"""

from repro.serve.fused import fused_act_join, fused_lookup
from repro.serve.loadgen import LoadReport, run_serving_load
from repro.serve.request import (
    JoinAnswer,
    LookupAnswer,
    RequestTiming,
    ServeRequest,
    ServeResponse,
)
from repro.serve.server import QueryServer, ServerStats, StatsSnapshot

__all__ = [
    "JoinAnswer",
    "LoadReport",
    "LookupAnswer",
    "QueryServer",
    "RequestTiming",
    "ServeRequest",
    "ServeResponse",
    "ServerStats",
    "StatsSnapshot",
    "fused_act_join",
    "fused_lookup",
    "run_serving_load",
]
