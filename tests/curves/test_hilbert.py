"""Tests for Hilbert-curve encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CurveError
from repro.curves import hilbert_decode, hilbert_encode, hilbert_encode_array

levels = st.integers(min_value=1, max_value=16)


class TestHilbertScalar:
    def test_level_one_order(self):
        # The level-1 Hilbert curve visits the quadrants in a U shape.
        visited = [hilbert_decode(d, 1) for d in range(4)]
        assert sorted(visited) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert visited[0] == (0, 0)

    def test_level_zero(self):
        assert hilbert_encode(0, 0, 0) == 0
        assert hilbert_decode(0, 0) == (0, 0)

    def test_out_of_range(self):
        with pytest.raises(CurveError):
            hilbert_encode(2, 0, 1)
        with pytest.raises(CurveError):
            hilbert_decode(4, 1)

    @settings(max_examples=60)
    @given(level=levels, data=st.data())
    def test_roundtrip(self, level, data):
        n = 1 << level
        ix = data.draw(st.integers(0, n - 1))
        iy = data.draw(st.integers(0, n - 1))
        code = hilbert_encode(ix, iy, level)
        assert hilbert_decode(code, level) == (ix, iy)

    def test_bijection_small_grid(self):
        level = 3
        n = 1 << level
        codes = {hilbert_encode(ix, iy, level) for ix in range(n) for iy in range(n)}
        assert codes == set(range(n * n))

    def test_adjacency_of_consecutive_codes(self):
        """Consecutive Hilbert codes are always 4-neighbours on the grid (the
        locality property the Z curve lacks)."""
        level = 4
        n = 1 << level
        prev = hilbert_decode(0, level)
        for d in range(1, n * n):
            cur = hilbert_decode(d, level)
            manhattan = abs(cur[0] - prev[0]) + abs(cur[1] - prev[1])
            assert manhattan == 1
            prev = cur


class TestHilbertVectorised:
    def test_matches_scalar(self, rng):
        level = 10
        n = 1 << level
        ix = rng.integers(0, n, 300)
        iy = rng.integers(0, n, 300)
        codes = hilbert_encode_array(ix, iy, level)
        for i in range(0, 300, 17):
            assert int(codes[i]) == hilbert_encode(int(ix[i]), int(iy[i]), level)

    def test_out_of_range_rejected(self):
        with pytest.raises(CurveError):
            hilbert_encode_array(np.array([2]), np.array([0]), 1)

    def test_level_zero_array(self):
        codes = hilbert_encode_array(np.array([0, 0]), np.array([0, 0]), 0)
        assert codes.tolist() == [0, 0]
