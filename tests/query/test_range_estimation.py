"""Tests for result-range estimation (§6)."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.query import estimate_count_range, exact_count


class TestResultRange:
    def test_invalid_epsilon(self, taxi_points, neighborhoods):
        with pytest.raises(QueryError):
            estimate_count_range(taxi_points, neighborhoods[0], epsilon=0.0)

    def test_interval_contains_exact_count(self, taxi_points, neighborhoods):
        for region in neighborhoods[:4]:
            exact = exact_count(region, taxi_points)
            estimate = estimate_count_range(taxi_points, region, epsilon=10.0)
            assert estimate.contains(exact)
            assert estimate.lower <= estimate.expected <= estimate.upper

    def test_interval_width_bounded_by_boundary_count(self, taxi_points, neighborhoods):
        estimate = estimate_count_range(taxi_points, neighborhoods[0], epsilon=10.0)
        assert estimate.width == estimate.boundary_count

    def test_tighter_bound_gives_narrower_interval(self, taxi_points, neighborhoods):
        region = neighborhoods[0]
        wide = estimate_count_range(taxi_points, region, epsilon=40.0)
        narrow = estimate_count_range(taxi_points, region, epsilon=5.0)
        assert narrow.width <= wide.width

    def test_upper_is_conservative_count(self, taxi_points, neighborhoods):
        region = neighborhoods[2]
        exact = exact_count(region, taxi_points)
        estimate = estimate_count_range(taxi_points, region, epsilon=10.0)
        assert estimate.upper >= exact
        assert estimate.lower <= exact

    def test_expected_value_usually_closer_than_upper(self, taxi_points, neighborhoods):
        """The tightened estimate is a better point estimate than the raw
        conservative count for most regions (uniform-boundary assumption)."""
        closer = 0
        total = 0
        for region in neighborhoods:
            exact = exact_count(region, taxi_points)
            estimate = estimate_count_range(taxi_points, region, epsilon=20.0)
            if estimate.boundary_count == 0:
                continue
            total += 1
            if abs(estimate.expected - exact) <= abs(estimate.upper - exact):
                closer += 1
        if total:
            assert closer >= total / 2
