"""A small cost-based optimizer for the spatial aggregation query.

Section 4 of the paper: "the optimizer can choose different query plans based
on the query parameters, the distance bound (i.e., the resolution of the
rasterized canvas), and the estimated selectivity."

The optimizer here chooses between the approximate canvas plan (Bounded
Raster Join) and the exact filter-and-refine plan using simple cost models
that capture the paper's observed behaviour:

* the canvas plan's cost grows with the canvas resolution, i.e. with
  ``(extent / epsilon)^2``, plus one pass per device tile once the resolution
  exceeds the device limit;
* the exact plan's cost grows with the number of candidate points times the
  average polygon complexity (vertices per PIP test).

When the query demands exact results (``epsilon is None``) the exact plan is
chosen unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.distance_bound import cell_side_for_bound
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.hardware.gpu import DeviceSpec
from repro.query.plan import PlanNode, filter_refine_plan, raster_aggregation_plan
from repro.query.spec import AggregationQuery

__all__ = ["PlanChoice", "CostModel", "choose_plan"]

Region = Polygon | MultiPolygon


@dataclass(frozen=True, slots=True)
class CostModel:
    """Cost constants of the optimizer (relative units, not seconds)."""

    #: Cost of touching one canvas pixel (rasterization + blending).
    pixel_cost: float = 1.0
    #: Fixed cost of one extra aggregation pass (canvas tile).
    pass_cost: float = 5e4
    #: Cost of one point-in-polygon test per polygon vertex.
    pip_vertex_cost: float = 12.0
    #: Cost of routing one point through the grid filter.
    filter_cost: float = 1.0


@dataclass(frozen=True, slots=True)
class PlanChoice:
    """The optimizer's decision with its cost estimates."""

    plan: PlanNode
    strategy: str
    raster_cost: float
    exact_cost: float

    @property
    def chose_raster(self) -> bool:
        return self.strategy == "raster"


def _estimate_raster_cost(
    extent: BoundingBox, epsilon: float, num_points: int, device: DeviceSpec, model: CostModel
) -> float:
    cell_side = cell_side_for_bound(epsilon)
    nx = max(1, int(extent.width / cell_side))
    ny = max(1, int(extent.height / cell_side))
    pixels = nx * ny
    tiles_x = -(-nx // device.max_texture_size)
    tiles_y = -(-ny // device.max_texture_size)
    passes = tiles_x * tiles_y
    return pixels * model.pixel_cost + passes * model.pass_cost + num_points * model.filter_cost


def _estimate_exact_cost(
    regions: list[Region], num_points: int, extent: BoundingBox, model: CostModel
) -> float:
    if not regions:
        return 0.0
    total_area = max(extent.area, 1e-12)
    cost = num_points * model.filter_cost
    for region in regions:
        # Candidate points of a region ~ points falling in its MBR.
        selectivity = min(1.0, region.bounds().area / total_area)
        candidates = num_points * selectivity
        cost += candidates * region.num_vertices * model.pip_vertex_cost
    return cost


def choose_plan(
    points: PointSet,
    regions: list[Region],
    query: AggregationQuery,
    extent: BoundingBox | None = None,
    device: DeviceSpec | None = None,
    model: CostModel | None = None,
) -> PlanChoice:
    """Pick the cheaper plan for the given query and distance bound."""
    device = device or DeviceSpec()
    model = model or CostModel()
    if extent is None:
        min_x, min_y, max_x, max_y = points.bounds()
        extent = BoundingBox(min_x, min_y, max_x, max_y)
        for region in regions:
            extent = extent.union(region.bounds())

    exact_cost = _estimate_exact_cost(regions, len(points), extent, model)
    if query.epsilon is None:
        return PlanChoice(
            plan=filter_refine_plan(),
            strategy="exact",
            raster_cost=float("inf"),
            exact_cost=exact_cost,
        )

    raster_cost = _estimate_raster_cost(extent, query.epsilon, len(points), device, model)
    if raster_cost <= exact_cost:
        return PlanChoice(
            plan=raster_aggregation_plan(query.epsilon),
            strategy="raster",
            raster_cost=raster_cost,
            exact_cost=exact_cost,
        )
    return PlanChoice(
        plan=filter_refine_plan(),
        strategy="exact",
        raster_cost=raster_cost,
        exact_cost=exact_cost,
    )
