"""FIG6 — main-memory spatial aggregation join (Figure 6).

The paper joins 1.2B taxi points with three NYC polygon suites (Boroughs,
Neighborhoods, Census) and compares

* ACT — the approximate index-nested-loop join over distance-bounded
  hierarchical raster approximations (4 m bound, no PIP tests),
* the Boost R*-tree exact filter-and-refine join (MBR filter + PIP), and
* an S2ShapeIndex-like exact join (coarse covering + PIP).

Expected shape: ACT wins everywhere; the gap is largest for Boroughs (complex
polygons make each PIP test expensive) and smallest for Census (simple
polygons), and ACT pays for its speed with a much larger index.

Every strategy runs once per probe engine (``REPRO_BENCH_ENGINES``, default
both): the ``python`` backend is the original per-point index-nested loop, the
``vectorized`` backend probes the whole point batch through the flattened
index representations.  The ACT *build* phase (HR approximations + index
load) additionally runs once per build engine
(``REPRO_BENCH_BUILD_ENGINES``, default all three): the ``python`` backend is
the per-cell recursion + per-insert trie oracle, the ``vectorized`` backend
the per-region level-synchronous frontier sweep + FlatACT bulk load, and the
``suite`` backend sweeps all regions' frontiers in one region-tagged batch
per level, amortizing the per-level numpy overhead over the whole polygon
suite.  Each run appends a
JSON record with its engines, ``build_seconds`` / ``probe_seconds`` split and
probe throughput (points/sec) so both perf trajectories across PRs stay
comparable.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import (
    append_run_record,
    build_engines_from_env,
    engines_from_env,
    is_smoke_run,
    run_record,
)
from repro.index import AdaptiveCellTrie
from repro.query import (
    act_approximate_join,
    exact_join_reference,
    get_build_engine,
    median_relative_error,
    rtree_exact_join,
    shape_index_exact_join,
)

#: The paper's distance bound for ACT (metres).  The CI smoke run loosens it:
#: the bound sets the refinement depth (and thus the cell count) regardless
#: of the suite scale, and the smoke job only needs every build/probe path to
#: execute, not the paper's precision.
ACT_EPSILON = 32.0 if is_smoke_run() else 4.0

SUITES = ("boroughs", "neighborhoods", "census")
ENGINES = engines_from_env()
BUILD_ENGINES = build_engines_from_env()


def _emit(name: str, suite: str, engine: str, result) -> None:
    """Append the JSON run record of one join measurement."""
    append_run_record(
        run_record(
            "fig6",
            f"{name}:{suite}",
            result.probe_seconds,
            engine=engine,
            build_engine=result.build_engine or None,
            num_points=result.index_probes,
            build_seconds=result.build_seconds,
            probe_seconds=result.probe_seconds,
            metrics={
                "pip_tests": result.pip_tests,
                "index_memory_bytes": result.index_memory_bytes,
            },
        )
    )


@pytest.fixture(scope="module")
def polygon_suites(boroughs, neighborhoods, census):
    return {"boroughs": boroughs, "neighborhoods": neighborhoods, "census": census}


@pytest.fixture(scope="module")
def reference_counts(join_points, polygon_suites):
    return {
        name: exact_join_reference(join_points, regions).counts
        for name, regions in polygon_suites.items()
    }


@pytest.fixture(scope="module")
def act_tries(polygon_suites, frame):
    """ACT index per suite, built once outside the timed join (the paper also
    reports query time over a pre-built index)."""
    return {
        name: AdaptiveCellTrie.build(regions, frame, epsilon=ACT_EPSILON)
        for name, regions in polygon_suites.items()
    }


@pytest.mark.parametrize("build_engine", BUILD_ENGINES)
@pytest.mark.parametrize("suite", SUITES)
def test_fig6_act_build(
    benchmark, suite, build_engine, join_points, polygon_suites, frame, reference_counts
):
    """ACT build phase per engine: HR approximations + index load.

    The python oracle classifies one cell per call and inserts one trie node
    per cell; the vectorized engine sweeps whole refinement levels and
    bulk-loads a FlatACT.  Both indexes must answer the join identically —
    the ``build_seconds`` records demonstrate the construction speedup.
    """
    regions = polygon_suites[suite]
    builder = get_build_engine(build_engine)

    start = time.perf_counter()
    index = benchmark.pedantic(
        builder.load_act,
        args=(regions, frame),
        kwargs={"epsilon": ACT_EPSILON},
        rounds=1,
        iterations=1,
    )
    build_seconds = time.perf_counter() - start

    # The built index must drive the join to the same approximate answer.
    result = act_approximate_join(
        join_points, regions, frame, epsilon=ACT_EPSILON, trie=index, build_engine=build_engine
    )
    error = median_relative_error(result.counts, reference_counts[suite])
    benchmark.extra_info.update(
        {
            "suite": suite,
            "build_engine": build_engine,
            "num_cells": index.num_cells,
            "index_memory_bytes": index.memory_bytes(),
            "median_rel_error": round(error, 4),
        }
    )
    append_run_record(
        run_record(
            "fig6",
            f"act_build:{suite}",
            build_seconds,
            build_engine=build_engine,
            build_seconds=build_seconds,
            probe_seconds=0.0,
            metrics={
                "num_cells": index.num_cells,
                "index_memory_bytes": index.memory_bytes(),
            },
        )
    )
    assert error < 0.05


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("suite", SUITES)
def test_fig6_act_approximate_join(
    benchmark, suite, engine, join_points, polygon_suites, frame, act_tries, reference_counts
):
    regions = polygon_suites[suite]

    result = benchmark.pedantic(
        act_approximate_join,
        args=(join_points, regions, frame),
        kwargs={"epsilon": ACT_EPSILON, "trie": act_tries[suite], "engine": engine},
        rounds=1,
        iterations=1,
    )
    error = median_relative_error(result.counts, reference_counts[suite])
    benchmark.extra_info.update(
        {
            "suite": suite,
            "engine": engine,
            "pip_tests": result.pip_tests,
            "median_rel_error": round(error, 4),
            "index_memory_bytes": result.index_memory_bytes,
            "points_per_second": round(result.probe_throughput),
        }
    )
    _emit("act", suite, engine, result)
    assert result.pip_tests == 0
    assert error < 0.05


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("suite", SUITES)
def test_fig6_rstar_exact_join(
    benchmark, suite, engine, join_points, polygon_suites, reference_counts
):
    regions = polygon_suites[suite]
    result = benchmark.pedantic(
        rtree_exact_join,
        args=(join_points, regions),
        kwargs={"engine": engine},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "suite": suite,
            "engine": engine,
            "pip_tests": result.pip_tests,
            "index_memory_bytes": result.index_memory_bytes,
            "points_per_second": round(result.probe_throughput),
        }
    )
    _emit("rtree", suite, engine, result)
    assert (result.counts == reference_counts[suite]).all()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("suite", SUITES)
def test_fig6_shape_index_exact_join(
    benchmark, suite, engine, join_points, polygon_suites, frame, reference_counts
):
    regions = polygon_suites[suite]
    result = benchmark.pedantic(
        shape_index_exact_join,
        args=(join_points, regions, frame),
        kwargs={"max_cells_per_shape": 32, "engine": engine},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "suite": suite,
            "engine": engine,
            "pip_tests": result.pip_tests,
            "index_memory_bytes": result.index_memory_bytes,
            "points_per_second": round(result.probe_throughput),
        }
    )
    _emit("shape_index", suite, engine, result)
    assert (result.counts == reference_counts[suite]).all()
