"""Tests for the convex hull."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import Polygon, convex_hull, points_in_polygon


class TestConvexHull:
    def test_square_hull(self):
        pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)])
        hull = convex_hull(pts)
        assert hull.shape[0] == 4

    def test_collinear_rejected(self):
        with pytest.raises(GeometryError):
            convex_hull(np.array([(0, 0), (1, 1), (2, 2)]))

    def test_too_few_points_rejected(self):
        with pytest.raises(GeometryError):
            convex_hull(np.array([(0, 0), (1, 1)]))

    def test_duplicates_handled(self):
        pts = np.array([(0, 0), (0, 0), (1, 0), (1, 1), (0, 1), (1, 1)])
        hull = convex_hull(pts)
        assert hull.shape[0] == 4

    def test_hull_is_ccw(self):
        pts = np.random.default_rng(3).uniform(0, 10, size=(50, 2))
        hull = convex_hull(pts)
        assert Polygon(hull).exterior.is_ccw

    @settings(max_examples=25)
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 60))
    def test_hull_contains_all_points(self, seed, n):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-100, 100, size=(n, 2))
        try:
            hull = convex_hull(pts)
        except GeometryError:
            return  # degenerate draw (collinear), nothing to check
        hull_poly = Polygon(hull)
        inside = points_in_polygon(pts[:, 0], pts[:, 1], hull_poly)
        assert inside.all()

    @settings(max_examples=25)
    @given(seed=st.integers(0, 10_000))
    def test_hull_vertices_subset_of_input(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-50, 50, size=(30, 2))
        hull = convex_hull(pts)
        input_set = {tuple(p) for p in np.round(pts, 9)}
        for vertex in np.round(hull, 9):
            assert tuple(vertex) in input_set
