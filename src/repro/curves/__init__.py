"""Space-filling curves and hierarchical cell identifiers.

Raster cells are mapped to a one-dimensional key space before indexing
(paper §3).  This package provides the Z-order (Morton) and Hilbert curves plus
prefix-compatible hierarchical cell IDs used by the Adaptive Cell Trie.
"""

from repro.curves.cellid import (
    CellId,
    cell_token,
    children_codes,
    common_ancestor_level,
    parent_codes,
)
from repro.curves.hilbert import hilbert_decode, hilbert_encode, hilbert_encode_array
from repro.curves.morton import (
    MAX_LEVEL,
    morton_decode,
    morton_decode_array,
    morton_encode,
    morton_encode_array,
)

__all__ = [
    "MAX_LEVEL",
    "CellId",
    "cell_token",
    "children_codes",
    "common_ancestor_level",
    "parent_codes",
    "hilbert_decode",
    "hilbert_encode",
    "hilbert_encode_array",
    "morton_decode",
    "morton_decode_array",
    "morton_encode",
    "morton_encode_array",
]
