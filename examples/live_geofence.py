"""Live geofences: mutate polygon boundaries under a continuously served join.

A fleet-monitoring scenario: taxi-like points stream through a
`SpatialDataset` whose "geofences" suite is **live** — an operator moves a
fence, retires another and draws a new one while count queries keep running.
Every mutation goes through the delta-only path: each polygon carries a
blake2b content fingerprint, unchanged fences are skipped entirely, and the
cached `FlatACT` index is patched in place (only the changed fence's cell
postings are rebuilt) instead of being thrown away and rebuilt from scratch.

The script prints, per mutation, what the delta contained, how long the
patch took versus a from-scratch index rebuild, and finally verifies the
paper-grade guarantee: the patched index answers the aggregation join
**bit-identically** to a dataset built directly on the final geometry.

Run with::

    python examples/live_geofence.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AggregationQuery, NYCWorkload, SpatialDataset
from repro.approx.build_engine import get_build_engine
from repro.bench import print_table

EPSILON = 4.0


def main() -> None:
    workload = NYCWorkload(seed=11)
    points = workload.taxi_points(100_000)
    fences = workload.neighborhoods(count=24)
    dataset = SpatialDataset(
        points,
        frame=workload.frame(),
        extent=workload.extent,
        suites={"geofences": fences},
    )
    spec = AggregationQuery(epsilon=EPSILON, suite="geofences")
    dataset.act_index("geofences", EPSILON)  # warm the patch target
    builder = get_build_engine(dataset.config.build_engine)

    print(f"{len(points):,} pickup points, {len(fences)} live geofences")
    baseline = dataset.query(spec)
    print(f"initial query: strategy={baseline.strategy}, counts[:4]={baseline.counts[:4]}")

    # The operator's session: move fence 0, retire fence 3, draw a new one,
    # and re-submit fence 5 unchanged (a fingerprint-skipped no-op).
    mutations = [
        ("move fence 0", lambda: dataset.replace_polygon(
            "geofences", 0, dataset.suite("geofences").regions[0].translated(30.0, -20.0)
        )),
        ("retire fence 3", lambda: dataset.remove_polygons("geofences", [3])),
        ("draw a new fence", lambda: dataset.add_polygons(
            "geofences", [workload.neighborhoods(count=25)[24]]
        )),
        ("re-submit fence 5 unchanged", lambda: dataset.replace_polygon(
            "geofences", 5, dataset.suite("geofences").regions[5]
        )),
    ]

    rows = []
    for label, mutate in mutations:
        start = time.perf_counter()
        info = mutate()
        patch_ms = (time.perf_counter() - start) * 1e3
        current = list(dataset.suite("geofences").regions)
        start = time.perf_counter()
        builder.load_act(current, dataset.frame, epsilon=EPSILON)
        rebuild_ms = (time.perf_counter() - start) * 1e3
        rows.append(
            [
                label,
                "skip (identical)" if info["noop"]
                else f"{info['replaced']}r / {info['added']}a / {info['removed']}d",
                round(patch_ms, 2),
                round(rebuild_ms, 2),
                f"{rebuild_ms / max(patch_ms, 1e-9):.0f}x",
            ]
        )

    print()
    print_table(
        ["mutation", "delta", "patch ms", "full rebuild ms", "speedup"],
        rows,
        title="Delta-only patches vs from-scratch rebuilds",
    )

    # Rebuild parity: the patched cached index answers exactly like a fresh
    # dataset over the final geometry — floats included.
    final_regions = list(dataset.suite("geofences").regions)
    patched = dataset.query(spec)
    fresh = SpatialDataset(
        points,
        frame=workload.frame(),
        extent=workload.extent,
        suites={"geofences": final_regions},
    ).query(spec)
    assert np.array_equal(patched.counts, fresh.counts)
    assert np.array_equal(patched.aggregates, fresh.aggregates)

    stats = dataset.registry_stats()
    print()
    print(
        f"registry: {stats['patches']} patches over {stats['patched_polygons']} "
        f"polygons, {stats['suite_hits']} suite hits / {stats['suite_misses']} misses"
    )
    print("rebuild parity: patched index == from-scratch build, bit for bit")


if __name__ == "__main__":
    main()
