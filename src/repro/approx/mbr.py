"""Minimum Bounding Rectangle (MBR) approximation.

The MBR is "the most widely used spatial object approximation" (paper §2.1,
Figure 1(a)) and the representation every baseline index in this repository
filters on.  It is *not* distance-bounded: the distance between an MBR corner
and the closest point of the object boundary is data dependent and can be
arbitrarily large, which is exactly the weakness the motivating example of
Figure 2 illustrates.
"""

from __future__ import annotations

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = ["MBRApproximation"]


class MBRApproximation(GeometricApproximation):
    """Axis-aligned minimum bounding rectangle of a region."""

    distance_bounded = False

    __slots__ = ("box",)

    def __init__(self, region: Polygon | MultiPolygon) -> None:
        self.box = region.bounds()

    def covers_point(self, x: float, y: float) -> bool:
        return self.box.contains_xy(x, y)

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs, ys = as_point_arrays(xs, ys)
        return self.box.contains_points(xs, ys)

    def bounds(self) -> BoundingBox:
        return self.box

    def memory_bytes(self) -> int:
        # Four float64 coordinates.
        return 4 * 8

    @property
    def name(self) -> str:
        return "MBR"
