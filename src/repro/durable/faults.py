"""Fault-injection hooks for the durability layer.

Every I/O primitive the write-ahead log and the checkpoint machinery rely
on — ``fsync`` on data files, ``fsync`` on directories, the atomic
``os.replace`` manifest swap, and the raw WAL record write — funnels through
this module.  Tests arm a :class:`FaultPlan` with :func:`inject` and the
n-th occurrence of a named operation either raises :class:`InjectedFault`
(the caller sees a failed syscall), writes only a prefix of the payload
(a torn tail record, exactly what a power cut mid-``write`` leaves behind),
or SIGKILLs the process outright (the kill-9 crash harness).

The hooks are deliberately global (module state, not object state): a crash
does not care which store instance was writing, and the crash-injection
suite drives whole interleavings of stores, shards and checkpoints through
one plan.  Production code pays one ``is None`` check per operation.
"""

from __future__ import annotations

import os
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "check",
    "fsync_dir",
    "fsync_fileno",
    "fsync_path",
    "inject",
    "replace",
    "torn_write",
]


class InjectedFault(OSError):
    """The simulated syscall failure raised by an armed ``raise`` rule."""


@dataclass(frozen=True, slots=True)
class FaultRule:
    """What happens the ``at``-th time (0-based) the named op runs.

    ``mode`` is one of ``"raise"`` (fail the syscall), ``"kill"``
    (SIGKILL the process — only meaningful in a subprocess harness) or
    ``"torn"`` (for ``wal.write``: write only ``keep_bytes`` of the payload,
    then behave like ``kill``-without-the-kill — the record is torn and the
    caller must treat the store as crashed).
    """

    op: str
    at: int
    mode: str = "raise"
    keep_bytes: int = 0


@dataclass(slots=True)
class FaultPlan:
    """Armed rules plus per-op occurrence counters."""

    rules: tuple[FaultRule, ...]
    counts: dict = field(default_factory=dict)

    def fire(self, op: str) -> FaultRule | None:
        """Count one occurrence of ``op``; the matching rule, if any."""
        seen = self.counts.get(op, 0)
        self.counts[op] = seen + 1
        for rule in self.rules:
            if rule.op == op and rule.at == seen:
                return rule
        return None


_active: FaultPlan | None = None
_lock = threading.Lock()


@contextmanager
def inject(*rules: FaultRule):
    """Arm a fault plan for the duration of the block (tests only)."""
    global _active
    with _lock:
        if _active is not None:
            raise RuntimeError("a fault plan is already armed")
        _active = FaultPlan(tuple(rules))
    try:
        yield _active
    finally:
        with _lock:
            _active = None


def check(op: str) -> None:
    """Fire the hook for ``op``; raises or kills when a rule matches."""
    plan = _active
    if plan is None:
        return
    rule = plan.fire(op)
    if rule is None:
        return
    if rule.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedFault(f"injected fault: {op} #{rule.at}")


def torn_write(op: str, payload: bytes) -> bytes | None:
    """For write ops: the torn prefix to write instead, or ``None``.

    Unlike :func:`check`, a matching ``torn`` rule does not raise here —
    the caller writes the prefix and *then* raises, so the file genuinely
    holds a partial record the way a crashed ``write`` would leave it.
    """
    plan = _active
    if plan is None:
        return None
    rule = plan.fire(op)
    if rule is None:
        return None
    if rule.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if rule.mode == "torn":
        return payload[: rule.keep_bytes]
    raise InjectedFault(f"injected fault: {op} #{rule.at}")


# --------------------------------------------------------------------- #
# hooked I/O primitives (the only fsync/replace paths the library uses)
# --------------------------------------------------------------------- #
def fsync_fileno(fileno: int) -> None:
    """``os.fsync`` with the ``"fsync"`` fault hook."""
    check("fsync")
    os.fsync(fileno)


def fsync_path(path) -> None:
    """fsync a closed file by path (checkpoint run files, manifests)."""
    check("fsync")
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path) -> None:
    """fsync a directory so freshly created/renamed entries are durable."""
    fsync_path(path)


def replace(src, dst) -> None:
    """``os.replace`` with the ``"replace"`` fault hook."""
    check("replace")
    os.replace(src, dst)
