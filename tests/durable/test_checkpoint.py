"""Whole-session checkpoints: SpatialDataset.save / SpatialDataset.open."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EngineConfig, SpatialDataset
from repro.durable import crashsim
from repro.errors import StoreError
from repro.geometry.point import PointSet
from repro.geometry.polygon import Polygon
from repro.query import AggregationQuery
from repro.query.spec import Aggregate
from repro.shard.store import ShardedStore
from repro.store.store import SpatialStore


def _square(x, y, side):
    return Polygon(
        np.array([[x, y], [x + side, y], [x + side, y + side], [x, y + side]], float)
    )


@pytest.fixture()
def suite_regions():
    return [_square(100, 100, 300), _square(500, 400, 250), _square(50, 700, 180)]


@pytest.fixture()
def spec():
    return AggregationQuery(aggregate=Aggregate.SUM, attribute="fare", epsilon=4.0)


def _points(seed, n=3000):
    rng = np.random.default_rng(seed)
    return PointSet(
        rng.uniform(0, 1000, n),
        rng.uniform(0, 1000, n),
        {"fare": rng.uniform(1, 50, n), "tip": rng.uniform(0, 10, n)},
    )


class TestStaticSessions:
    def test_round_trip_bit_identical(self, tmp_path, crash_frame, suite_regions, spec):
        dataset = SpatialDataset(
            _points(1),
            frame=crash_frame,
            suites={"zones": suite_regions},
            config=EngineConfig(engine="vectorized", workers=0),
            level=10,
        )
        reference = dataset.query(spec)
        dataset.save(tmp_path / "session")
        restored = SpatialDataset.open(tmp_path / "session")
        assert restored.level == 10
        assert restored.config.engine == "vectorized"
        assert restored.suite("zones").fingerprint == dataset.suite("zones").fingerprint
        result = restored.query(spec)
        np.testing.assert_array_equal(result.aggregates, reference.aggregates)
        np.testing.assert_array_equal(result.counts, reference.counts)

    def test_attributes_and_extent_survive(self, tmp_path, crash_frame, suite_regions):
        dataset = SpatialDataset(
            _points(2), frame=crash_frame, suites={"zones": suite_regions}
        )
        dataset.save(tmp_path / "session")
        restored = SpatialDataset.open(tmp_path / "session")
        assert restored.points().attribute_names == ("fare", "tip")
        assert restored.extent.min_x == dataset.extent.min_x
        assert restored.extent.max_y == dataset.extent.max_y

    def test_config_override_wins(self, tmp_path, crash_frame, suite_regions):
        dataset = SpatialDataset(
            _points(3),
            frame=crash_frame,
            suites={"zones": suite_regions},
            config=EngineConfig(engine="python"),
        )
        dataset.save(tmp_path / "session")
        restored = SpatialDataset.open(
            tmp_path / "session", config=EngineConfig(engine="vectorized")
        )
        assert restored.config.engine == "vectorized"


class TestStoreSessions:
    def test_wal_tail_replays_through_session_open(
        self, tmp_path, crash_frame, suite_regions, spec
    ):
        store = SpatialStore.create(
            tmp_path / "session/store",
            crash_frame,
            10,
            attributes=("fare", "tip"),
            memtable_capacity=512,
        )
        store.insert(_points(4))
        dataset = SpatialDataset(store, suites={"zones": suite_regions})
        dataset.save(tmp_path / "session")  # in-place: WAL truncated here
        store.insert(_points(5, 150))  # post-checkpoint tail, WAL only
        reference = dataset.query(spec)
        store.close()

        restored = SpatialDataset.open(tmp_path / "session")
        assert restored.store.last_recovery.inserted_points == 150
        result = restored.query(spec)
        np.testing.assert_array_equal(result.aggregates, reference.aggregates)
        np.testing.assert_array_equal(result.counts, reference.counts)
        restored.store.close()

    def test_foreign_save_produces_durable_copy(self, tmp_path, crash_frame, suite_regions):
        memory_store = SpatialStore(
            crash_frame, 10, attributes=("fare", "tip"), memtable_capacity=512
        )
        memory_store.insert(_points(6))
        dataset = SpatialDataset(memory_store, suites={"zones": suite_regions})
        dataset.save(tmp_path / "session")
        dataset.save(tmp_path / "session")  # idempotent over the same directory

        restored = SpatialDataset.open(tmp_path / "session")
        assert restored.store.wal is not None
        restored.store.insert(_points(7, 80))  # goes through the copy's WAL
        live = restored.store.num_live
        restored.store.close()
        again = SpatialDataset.open(tmp_path / "session")
        assert again.store.num_live == live
        again.store.close()

    def test_sharded_session_round_trip(self, tmp_path, crash_frame, suite_regions, spec):
        store = ShardedStore.create(
            tmp_path / "session/store",
            crash_frame,
            10,
            4,
            attributes=("fare", "tip"),
            memtable_capacity=512,
        )
        store.insert(_points(8))
        dataset = SpatialDataset(store, suites={"zones": suite_regions})
        dataset.save(tmp_path / "session")
        store.insert(_points(9, 120))
        reference = dataset.query(spec)
        store.close()

        restored = SpatialDataset.open(tmp_path / "session")
        assert restored.shards == 4
        assert restored.store.last_recovery.inserted_points == 120
        result = restored.query(spec)
        np.testing.assert_array_equal(result.aggregates, reference.aggregates)
        restored.store.close()

    def test_session_open_after_kill9(self, tmp_path, suite_regions, spec):
        import subprocess
        import sys
        from pathlib import Path

        script = crashsim.make_script(seed=33, ops=18)
        child = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.durable.crashsim",
                str(tmp_path / "session/store"),
                "--ops",
                "18",
                "--seed",
                "33",
                "--crash-after",
                "11",
            ],
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
            timeout=120,
        )
        assert child.returncode == -9
        # The session manifest can be written around the crashed store: the
        # dataset facade only needs suites + config on top of it.
        probe = SpatialDataset(
            SpatialStore.open(tmp_path / "session/store"),
            suites={"zones": suite_regions},
        )
        probe.save(tmp_path / "session")
        probe.store.close()

        restored = SpatialDataset.open(tmp_path / "session")
        oracle = crashsim.build_oracle(script, 11)
        assert crashsim.logical_digest(restored.store) == crashsim.logical_digest(oracle)
        restored.store.close()


class TestVerification:
    def test_tampered_suite_geometry_detected(self, tmp_path, crash_frame, suite_regions):
        dataset = SpatialDataset(
            _points(10), frame=crash_frame, suites={"zones": suite_regions}
        )
        dataset.save(tmp_path / "session")
        wkt_file = tmp_path / "session/suites/suite_0000.wkt"
        wkt_file.write_text(wkt_file.read_text().replace("100", "101"))
        with pytest.raises(StoreError, match="fingerprint"):
            SpatialDataset.open(tmp_path / "session")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StoreError, match="session manifest"):
            SpatialDataset.open(tmp_path / "nowhere")

    def test_unsupported_version_raises(self, tmp_path, crash_frame, suite_regions):
        import json

        dataset = SpatialDataset(
            _points(11), frame=crash_frame, suites={"zones": suite_regions}
        )
        dataset.save(tmp_path / "session")
        manifest = tmp_path / "session/session.json"
        data = json.loads(manifest.read_text())
        data["format_version"] = 99
        manifest.write_text(json.dumps(data))
        with pytest.raises(StoreError, match="version"):
            SpatialDataset.open(tmp_path / "session")
