"""Scalar measures over geometries.

Thin convenience wrappers used by the workload generators (to verify the
vertex-complexity ratios of the synthetic polygon suites) and by the accuracy
reports (area-weighted error summaries).
"""

from __future__ import annotations

from statistics import mean

import numpy as np

from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = [
    "area",
    "perimeter",
    "vertex_count",
    "mean_vertex_count",
    "complexity_summary",
]

Region = Polygon | MultiPolygon


def area(region: Region) -> float:
    """Area of a polygon or multipolygon."""
    return region.area


def perimeter(region: Region) -> float:
    """Boundary length of a polygon or multipolygon."""
    if isinstance(region, MultiPolygon):
        return sum(p.perimeter() for p in region)
    return region.perimeter()


def vertex_count(region: Region) -> int:
    """Number of vertices of a polygon or multipolygon."""
    return region.num_vertices


def mean_vertex_count(regions: list[Region]) -> float:
    """Average vertex count of a polygon suite.

    The paper characterises its three NYC polygon datasets by this number
    (Boroughs 663, Neighborhoods 30.6, Census 13.6); the synthetic suites in
    :mod:`repro.data.polygons` are tuned to reproduce the same ratios.
    """
    if not regions:
        return 0.0
    return mean(vertex_count(r) for r in regions)


def complexity_summary(regions: list[Region]) -> dict[str, float]:
    """Summary statistics of a polygon suite used in benchmark reports."""
    if not regions:
        return {"count": 0, "mean_vertices": 0.0, "max_vertices": 0.0, "total_area": 0.0}
    counts = np.array([vertex_count(r) for r in regions], dtype=np.float64)
    return {
        "count": float(len(regions)),
        "mean_vertices": float(counts.mean()),
        "max_vertices": float(counts.max()),
        "total_area": float(sum(r.area for r in regions)),
    }
