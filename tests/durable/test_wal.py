"""WriteAheadLog unit tests: framing, torn tails, epochs, commit cuts."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.durable import faults
from repro.durable.wal import (
    COMMIT,
    DELETE,
    FLUSH,
    INSERT,
    CommitLog,
    WriteAheadLog,
    decode_commit,
    decode_compact,
    decode_delete,
    decode_insert,
    encode_commit,
    encode_compact,
    encode_delete,
    encode_insert,
)
from repro.errors import WalError


def _insert_payload(n=4, seed=0):
    rng = np.random.default_rng(seed)
    ids = np.arange(n, dtype=np.int64)
    xs, ys, fare = (rng.uniform(0, 100, n) for _ in range(3))
    return ids, xs, ys, fare, encode_insert(ids, xs, ys, [fare])


class TestCodecs:
    def test_insert_round_trip_bit_exact(self):
        ids, xs, ys, fare, payload = _insert_payload()
        out_ids, out_xs, out_ys, cols = decode_insert(payload)
        assert out_ids.tobytes() == ids.tobytes()
        assert out_xs.tobytes() == xs.tobytes()
        assert out_ys.tobytes() == ys.tobytes()
        assert len(cols) == 1 and cols[0].tobytes() == fare.tobytes()

    def test_insert_length_mismatch_raises(self):
        payload = _insert_payload()[-1]
        with pytest.raises(WalError, match="length"):
            decode_insert(payload[:-3])

    def test_delete_round_trip(self):
        ids = np.array([5, 9, 2], dtype=np.int64)
        assert decode_delete(encode_delete(ids)).tolist() == [5, 9, 2]

    def test_compact_round_trip(self):
        for params in [(False, None, None), (True, 1, None), (False, None, 4096)]:
            assert decode_compact(encode_compact(*params)) == params

    def test_commit_round_trip(self):
        entries = [(0, 12), (1, 0), (3, 7)]
        assert decode_commit(encode_commit(entries)) == entries


class TestAppendReopen:
    def test_reopen_returns_records_in_order(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        payloads = [b"a" * 5, b"b" * 9, b"c"]
        for payload in payloads:
            wal.append(INSERT, payload)
        wal.commit()
        wal.close()
        reopened, scan = WriteAheadLog.open(tmp_path / "wal")
        assert [p for _, p in scan.records] == payloads
        assert scan.torn == 0 and scan.rolled_back == 0
        assert reopened.record_count == 3
        reopened.close()

    def test_create_over_existing_segments_refuses(self, tmp_path):
        WriteAheadLog.create(tmp_path / "wal").close()
        with pytest.raises(WalError, match="existing segments"):
            WriteAheadLog.create(tmp_path / "wal")

    def test_rotation_spans_segments(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(INSERT, b"one")
        wal.commit()
        wal.rotate()
        wal.append(FLUSH, b"")
        wal.append(DELETE, b"two")
        wal.commit()
        wal.close()
        assert len(list((tmp_path / "wal").glob("wal_*.log"))) == 2
        reopened, scan = WriteAheadLog.open(tmp_path / "wal")
        assert [(t, p) for t, p in scan.records] == [
            (INSERT, b"one"),
            (FLUSH, b""),
            (DELETE, b"two"),
        ]
        assert scan.segments == 2
        reopened.close()

    def test_rotate_on_empty_segment_is_noop(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.rotate()
        wal.rotate()
        wal.close()
        assert len(list((tmp_path / "wal").glob("wal_*.log"))) == 1

    def test_writer_resumes_after_reopen(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(INSERT, b"first")
        wal.commit()
        wal.close()
        reopened, _ = WriteAheadLog.open(tmp_path / "wal")
        reopened.append(INSERT, b"second")
        reopened.commit()
        reopened.close()
        _, scan = WriteAheadLog.open(tmp_path / "wal")
        assert [p for _, p in scan.records] == [b"first", b"second"]


class TestTornTails:
    def _wal_with_records(self, tmp_path, count=3):
        wal = WriteAheadLog.create(tmp_path / "wal")
        for pos in range(count):
            wal.append(INSERT, bytes([pos]) * 20)
        wal.commit()
        wal.close()
        return sorted((tmp_path / "wal").glob("wal_*.log"))[0]

    def test_short_tail_dropped_with_warning_not_raised(self, tmp_path, caplog):
        segment = self._wal_with_records(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])  # tear the last record mid-payload
        with caplog.at_level(logging.WARNING, logger="repro.durable"):
            wal, scan = WriteAheadLog.open(tmp_path / "wal")
        assert len(scan.records) == 2
        assert scan.torn == 1
        assert any("torn" in record.message for record in caplog.records)
        # The file was truncated to the last complete record and the
        # writer resumes there: new appends must read back cleanly.
        wal.append(INSERT, b"after-recovery")
        wal.commit()
        wal.close()
        _, rescan = WriteAheadLog.open(tmp_path / "wal")
        assert rescan.torn == 0
        assert [p for _, p in rescan.records][-1] == b"after-recovery"

    def test_crc_corruption_drops_tail(self, tmp_path):
        segment = self._wal_with_records(tmp_path)
        data = bytearray(segment.read_bytes())
        # Records are 9-byte header + 20-byte payload after the 24-byte
        # segment header; byte 60 sits inside the second record's payload.
        data[60] ^= 0xFF
        segment.write_bytes(bytes(data))
        _, scan = WriteAheadLog.open(tmp_path / "wal")
        assert len(scan.records) == 1
        assert scan.torn >= 1

    def test_records_after_torn_point_in_later_segments_dropped(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(INSERT, b"seg0")
        wal.commit()
        wal.rotate()
        wal.append(INSERT, b"seg1")
        wal.commit()
        wal.close()
        first = sorted((tmp_path / "wal").glob("wal_*.log"))[0]
        first.write_bytes(first.read_bytes()[:-3])
        _, scan = WriteAheadLog.open(tmp_path / "wal")
        # seg0's record is torn; seg1's record is *after* the torn point
        # and can never have been acked — dropped, not an error.
        assert scan.records == []
        assert scan.torn == 2

    def test_injected_torn_write_leaves_partial_record(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(INSERT, b"durable")
        wal.commit()
        with faults.inject(faults.FaultRule(op="wal.write", at=0, mode="torn", keep_bytes=6)):
            with pytest.raises(faults.InjectedFault):
                wal.append(INSERT, b"torn-away")
        wal.close()
        _, scan = WriteAheadLog.open(tmp_path / "wal")
        assert [p for _, p in scan.records] == [b"durable"]
        assert scan.torn == 1


class TestEpochs:
    def test_truncate_bumps_epoch_and_drops_segments(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(INSERT, b"old")
        wal.commit()
        wal.rotate()
        wal.append(INSERT, b"older")
        wal.commit()
        wal.truncate()
        assert wal.epoch == 1
        assert wal.record_count == 0
        wal.append(INSERT, b"new")
        wal.commit()
        wal.close()
        _, scan = WriteAheadLog.open(tmp_path / "wal", epoch=1)
        assert [p for _, p in scan.records] == [b"new"]

    def test_stale_pre_checkpoint_segments_deleted(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", epoch=0)
        wal.append(INSERT, b"stale")
        wal.commit()
        wal.close()
        _, scan = WriteAheadLog.open(tmp_path / "wal", epoch=1)
        assert scan.records == []
        assert scan.stale_segments == 1
        assert list((tmp_path / "wal").glob("wal_*.log")) != []  # fresh writer segment

    def test_future_epoch_raises(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", epoch=2)
        wal.append(INSERT, b"future")
        wal.commit()
        wal.close()
        with pytest.raises(WalError, match="epoch"):
            WriteAheadLog.open(tmp_path / "wal", epoch=1)


class TestReplayLimit:
    def _five_records(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        for pos in range(5):
            wal.append(INSERT, bytes([pos]))
        wal.commit()
        wal.close()

    def test_limit_rolls_back_unacked_records(self, tmp_path):
        self._five_records(tmp_path)
        wal, scan = WriteAheadLog.open(tmp_path / "wal", limit=(0, 3))
        assert len(scan.records) == 3
        assert scan.rolled_back == 2
        assert wal.record_count == 3
        wal.close()
        # The rolled-back bytes were physically trimmed.
        _, rescan = WriteAheadLog.open(tmp_path / "wal")
        assert len(rescan.records) == 3

    def test_limit_from_older_epoch_replays_nothing(self, tmp_path):
        self._five_records(tmp_path)
        _, scan = WriteAheadLog.open(tmp_path / "wal", limit=(-1, 5))
        assert scan.records == []
        assert scan.rolled_back == 5

    def test_limit_from_newer_epoch_raises(self, tmp_path):
        self._five_records(tmp_path)
        with pytest.raises(WalError, match="epoch"):
            WriteAheadLog.open(tmp_path / "wal", limit=(1, 2))


class TestCommitLog:
    def test_last_cut_wins(self, tmp_path):
        log = CommitLog.create(tmp_path / "commit")
        log.commit([(0, 1), (0, 2)])
        log.commit([(0, 4), (0, 6)])
        log.close()
        _, cut = CommitLog.open(tmp_path / "commit")
        assert cut == [(0, 4), (0, 6)]

    def test_no_commit_means_no_cut(self, tmp_path):
        CommitLog.create(tmp_path / "commit").close()
        _, cut = CommitLog.open(tmp_path / "commit")
        assert cut is None

    def test_torn_commit_record_ignored(self, tmp_path):
        log = CommitLog.create(tmp_path / "commit")
        log.commit([(0, 2)])
        log.close()
        segment = sorted((tmp_path / "commit").glob("wal_*.log"))[0]
        with open(segment, "ab") as handle:
            handle.write(b"\x99" * 5)  # a torn, never-acked commit append
        _, cut = CommitLog.open(tmp_path / "commit")
        assert cut == [(0, 2)]


class TestFaultHooks:
    def test_fsync_fault_surfaces_to_commit(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(COMMIT, b"x")
        with faults.inject(faults.FaultRule(op="fsync", at=0)):
            with pytest.raises(faults.InjectedFault):
                wal.commit()
        wal.close()

    def test_plan_counts_occurrences(self):
        plan = faults.FaultPlan((faults.FaultRule(op="fsync", at=2),))
        assert plan.fire("fsync") is None
        assert plan.fire("fsync") is None
        assert plan.fire("fsync") is not None

    def test_nested_inject_refused(self):
        with faults.inject(faults.FaultRule(op="fsync", at=0)):
            with pytest.raises(RuntimeError, match="already armed"):
                with faults.inject(faults.FaultRule(op="fsync", at=0)):
                    pass
