"""repro — distance-bounded spatial approximations.

A from-scratch Python reproduction of *"The Case for Distance-Bounded Spatial
Approximations"* (CIDR 2021): approximate spatial query processing that skips
exact geometric tests and answers queries on fine-grained raster
approximations whose error is bounded by a user-chosen Hausdorff distance.

The public API re-exports the most commonly used pieces; the sub-packages are

* :mod:`repro.api` — the session facade: datasets, engine config, index registry,
* :mod:`repro.geometry` — geometry kernel (points, polygons, exact predicates),
* :mod:`repro.approx` — MBR family and distance-bounded raster approximations,
* :mod:`repro.curves` — Morton / Hilbert linearization and hierarchical cell ids,
* :mod:`repro.grid` — uniform grids, rasterizer, canvas algebra,
* :mod:`repro.hardware` — simulated GPU device model,
* :mod:`repro.index` — ACT, RadixSpline and the baseline index zoo,
* :mod:`repro.query` — containment queries, joins, range estimation, optimizer,
* :mod:`repro.store` — LSM-style updatable point store with snapshot queries,
* :mod:`repro.data` — synthetic NYC-like workloads.

Quick example::

    from repro import NYCWorkload, AggregationQuery, SpatialDataset

    workload = NYCWorkload()
    dataset = SpatialDataset(
        workload.taxi_points(50_000),
        frame=workload.frame(),
        extent=workload.extent,
        suites={"neighborhoods": workload.neighborhoods(count=16)},
    )
    result = dataset.query(AggregationQuery(epsilon=4.0))
    print(result.strategy, result.counts)
"""

from repro.api import EngineConfig, IndexRegistry, SpatialDataset
from repro.approx import (
    DistanceBound,
    HierarchicalRasterApproximation,
    MBRApproximation,
    UniformRasterApproximation,
)
from repro.data import NYCWorkload
from repro.errors import ReproError
from repro.geometry import BoundingBox, MultiPolygon, Point, PointSet, Polygon
from repro.grid import Canvas, GridFrame, UniformGrid
from repro.hardware import SimulatedGPU
from repro.index import AdaptiveCellTrie, RadixSpline, SortedCodeArray
from repro.query import (
    Aggregate,
    AggregationQuery,
    act_approximate_join,
    bounded_raster_join,
    choose_plan,
    estimate_count_range,
    gpu_baseline_join,
    rtree_exact_join,
    shape_index_exact_join,
)
from repro.store import SizeTieredCompaction, SpatialStore

__version__ = "1.0.0"

__all__ = [
    "AdaptiveCellTrie",
    "Aggregate",
    "AggregationQuery",
    "BoundingBox",
    "Canvas",
    "DistanceBound",
    "EngineConfig",
    "GridFrame",
    "HierarchicalRasterApproximation",
    "IndexRegistry",
    "MBRApproximation",
    "MultiPolygon",
    "NYCWorkload",
    "Point",
    "PointSet",
    "Polygon",
    "RadixSpline",
    "ReproError",
    "SimulatedGPU",
    "SizeTieredCompaction",
    "SortedCodeArray",
    "SpatialDataset",
    "SpatialStore",
    "UniformGrid",
    "UniformRasterApproximation",
    "act_approximate_join",
    "bounded_raster_join",
    "choose_plan",
    "estimate_count_range",
    "gpu_baseline_join",
    "rtree_exact_join",
    "shape_index_exact_join",
    "__version__",
]
