"""Zero-copy publication of immutable arrays via shared memory.

The scatter-gather pool ships two kinds of payload to its workers: the
per-shard point coordinate blocks and the :class:`~repro.index.FlatACT` CSR
buffers.  Both are already flat ``np.ndarray`` collections (the same arrays
the ``.npz`` persistence layer writes), so publishing them is a byte copy
into one ``multiprocessing.shared_memory`` segment and attaching them in a
worker is a reshape — no pickling of array payloads, no per-task copies.

The wire format is a :class:`ShmBlock`: one segment plus a picklable
``specs`` manifest mapping each array name to ``(dtype, shape, offset)``.
Offsets are 64-byte aligned so attached views keep cache-line alignment.

Lifetime rules (POSIX shm is not garbage collected):

* the **owner** (the process that called :func:`pack_arrays`) should call
  :meth:`ShmBlock.unlink` when the block is retired.  As a backstop every
  block carries a ``weakref.finalize`` that unlinks the segment when the
  block is garbage collected or the interpreter exits, so an owner that
  forgets (or crashes past) ``unlink()`` cannot leak ``/dev/shm`` segments;
* **attachers** call :meth:`AttachedBlock.close` when done.  A *spawned*
  attacher additionally passes ``untrack=True``: its private
  ``resource_tracker`` would otherwise unlink the owner's live segment when
  the worker exits (CPython < 3.13 tracks attached segments as if they were
  owned).  Forked attachers share the owner's tracker — re-registration is
  idempotent there and untracking would double-unregister — so they leave
  tracking alone.
"""

from __future__ import annotations

import secrets
import weakref
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmBlock", "AttachedBlock", "pack_arrays", "attach_arrays"]

_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class ShmBlock:
    """An owned shared-memory segment holding a named set of arrays.

    ``specs`` (name → ``(dtype string, shape, byte offset)``) together with
    :attr:`name` is everything a worker needs to attach; both pickle small.
    """

    __slots__ = ("shm", "specs", "_finalizer", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory, specs: dict) -> None:
        self.shm = shm
        self.specs = specs
        # Unlinks when the block is garbage collected or the interpreter
        # exits, whichever comes first; explicit unlink() runs the same
        # (once-only) callback.  The callback must not reference self.
        self._finalizer = weakref.finalize(self, ShmBlock._release, shm)

    @staticmethod
    def _release(shm: shared_memory.SharedMemory) -> None:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def manifest(self) -> tuple[str, dict]:
        """Picklable handle ``(segment name, specs)`` for workers."""
        return (self.shm.name, self.specs)

    def unlink(self) -> None:
        """Release the segment (owner side; idempotent)."""
        self._finalizer()


class AttachedBlock:
    """Worker-side view of a :class:`ShmBlock`: zero-copy arrays by name."""

    __slots__ = ("shm", "arrays")

    def __init__(self, shm: shared_memory.SharedMemory, arrays: dict) -> None:
        self.shm = shm
        self.arrays = arrays

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    def close(self) -> None:
        """Drop the mapping (does not unlink the owner's segment)."""
        self.arrays = {}
        self.shm.close()


def pack_arrays(arrays: dict, name_hint: str = "repro") -> ShmBlock:
    """Copy a name → array mapping into one fresh shared-memory segment."""
    specs: dict[str, tuple[str, tuple, int]] = {}
    offset = 0
    items = [(key, np.ascontiguousarray(arr)) for key, arr in arrays.items()]
    for key, arr in items:
        offset = _aligned(offset)
        specs[key] = (arr.dtype.str, arr.shape, offset)
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(
        create=True, size=max(offset, 1), name=f"{name_hint}_{secrets.token_hex(8)}"
    )
    for key, arr in items:
        _, shape, start = specs[key]
        view = np.ndarray(shape, dtype=arr.dtype, buffer=shm.buf, offset=start)
        view[...] = arr
    return ShmBlock(shm, specs)


def attach_arrays(manifest: tuple[str, dict], untrack: bool = False) -> AttachedBlock:
    """Attach to a published block and expose its arrays as zero-copy views.

    ``untrack`` must be true exactly when this process has a resource
    tracker of its own that the owner does not share (spawned pool
    workers) — see the module docstring's lifetime rules.
    """
    name, specs = manifest
    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary by version
            pass
    arrays = {
        key: np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=start)
        for key, (dtype, shape, start) in specs.items()
    }
    return AttachedBlock(shm, arrays)
