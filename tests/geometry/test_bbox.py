"""Tests for axis-aligned bounding boxes."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import BoundingBox, Point

coords = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return BoundingBox(x1, y1, x2, y2)


class TestConstruction:
    def test_invalid_box_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_from_points(self):
        box = BoundingBox.from_points([1.0, 3.0, 2.0], [5.0, -1.0, 0.0])
        assert box.as_tuple() == (1.0, -1.0, 3.0, 5.0)

    def test_from_points_empty_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox.from_points([], [])

    def test_from_center(self):
        box = BoundingBox.from_center(Point(5.0, 5.0), 4.0, 2.0)
        assert box.as_tuple() == (3.0, 4.0, 7.0, 6.0)


class TestMeasures:
    def test_area_and_perimeter(self):
        box = BoundingBox(0.0, 0.0, 4.0, 3.0)
        assert box.area == pytest.approx(12.0)
        assert box.perimeter == pytest.approx(14.0)

    def test_center(self):
        assert BoundingBox(0.0, 0.0, 4.0, 2.0).center == Point(2.0, 1.0)

    def test_corners_order(self):
        corners = BoundingBox(0.0, 0.0, 1.0, 2.0).corners()
        assert corners[0] == Point(0.0, 0.0)
        assert corners[2] == Point(1.0, 2.0)


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains_point(Point(0.0, 0.0))
        assert box.contains_point(Point(1.0, 1.0))
        assert not box.contains_point(Point(1.0001, 0.5))

    def test_intersects_touching_edges(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(1.0, 0.0, 2.0, 1.0)
        assert a.intersects(b)

    def test_disjoint(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, 2.0, 3.0, 3.0)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_contains_box(self):
        outer = BoundingBox(0.0, 0.0, 10.0, 10.0)
        inner = BoundingBox(2.0, 2.0, 3.0, 3.0)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_contains_points_vectorised(self):
        import numpy as np

        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        xs = np.array([0.5, 2.0, 1.0])
        ys = np.array([0.5, 0.5, 1.0])
        assert box.contains_points(xs, ys).tolist() == [True, False, True]


class TestCombinators:
    def test_union_covers_both(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, -1.0, 3.0, 0.5)
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)

    def test_intersection_symmetric(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(1.0, 1.0, 3.0, 3.0)
        assert a.intersection(b).as_tuple() == b.intersection(a).as_tuple() == (1.0, 1.0, 2.0, 2.0)

    def test_expanded(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0).expanded(0.5)
        assert box.as_tuple() == (-0.5, -0.5, 1.5, 1.5)

    def test_enlargement_zero_for_contained(self):
        outer = BoundingBox(0.0, 0.0, 10.0, 10.0)
        inner = BoundingBox(1.0, 1.0, 2.0, 2.0)
        assert outer.enlargement(inner) == pytest.approx(0.0)

    def test_overlap_area(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(1.0, 1.0, 3.0, 3.0)
        assert a.overlap_area(b) == pytest.approx(1.0)

    @given(a=boxes(), b=boxes())
    def test_union_area_at_least_max(self, a, b):
        assert a.union(b).area >= max(a.area, b.area) - 1e-9

    @given(a=boxes(), b=boxes())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_box(inter)
            assert b.contains_box(inter)


class TestDistances:
    def test_distance_inside_is_zero(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_distance_to_corner(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.distance_to_point(Point(4.0, 5.0)) == pytest.approx(5.0)

    def test_max_distance(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.max_distance_to_point(Point(0.0, 0.0)) == pytest.approx(2.0**0.5)
