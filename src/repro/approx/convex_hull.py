"""Convex hull approximation (CH).

One of the classic object approximations of Brinkhoff et al. referenced in
§2.1.  More precise than the MBR for convex-ish regions, still not
distance-bounded (a deep concavity puts hull points arbitrarily far from the
object boundary).
"""

from __future__ import annotations

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.geometry.bbox import BoundingBox
from repro.geometry.convex_hull import convex_hull
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.predicates import point_in_polygon, points_in_polygon

__all__ = ["ConvexHullApproximation"]


def _region_coords(region: Polygon | MultiPolygon) -> np.ndarray:
    if isinstance(region, MultiPolygon):
        return np.vstack([p.exterior.coords for p in region])
    return region.exterior.coords


class ConvexHullApproximation(GeometricApproximation):
    """Convex hull of a region's exterior vertices."""

    distance_bounded = False

    __slots__ = ("hull", "_polygon")

    def __init__(self, region: Polygon | MultiPolygon) -> None:
        self.hull = convex_hull(_region_coords(region))
        self._polygon = Polygon(self.hull)

    def covers_point(self, x: float, y: float) -> bool:
        return point_in_polygon(x, y, self._polygon)

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs, ys = as_point_arrays(xs, ys)
        return points_in_polygon(xs, ys, self._polygon)

    def bounds(self) -> BoundingBox:
        return self._polygon.bounds()

    @property
    def num_vertices(self) -> int:
        return int(self.hull.shape[0])

    def memory_bytes(self) -> int:
        return int(self.hull.size) * 8

    @property
    def name(self) -> str:
        return "ConvexHull"
