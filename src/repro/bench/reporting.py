"""Plain-text and JSON reporting helpers for the benchmark harness.

Every benchmark prints the rows / series of the corresponding paper figure so
that EXPERIMENTS.md can quote them directly.  The helpers here render small
aligned tables and ratio summaries without pulling in any plotting
dependencies.

Benchmarks additionally emit one machine-readable **run record** per
measurement (:func:`run_record` + :func:`append_run_record`).  Each record
carries the probe ``engine`` that produced the number and the probe
throughput in points per second, so the performance trajectory of both
backends stays comparable across PRs.  Records are appended as JSON lines to
the path in ``REPRO_BENCH_JSON`` (default ``.benchmarks/runs.jsonl``).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_ratio",
    "print_table",
    "run_record",
    "append_run_record",
    "default_records_path",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> None:
    """Print :func:`format_table` output (convenience for benchmarks)."""
    print()
    print(format_table(headers, rows, title=title))


def format_ratio(value: float, reference: float) -> str:
    """Render ``reference / value`` as a speedup factor string (e.g. ``"8.5x"``)."""
    if value <= 0:
        return "inf"
    return f"{reference / value:.1f}x"


def default_records_path() -> str:
    """Destination of the JSON-lines run records (``REPRO_BENCH_JSON`` env var)."""
    return os.environ.get("REPRO_BENCH_JSON", os.path.join(".benchmarks", "runs.jsonl"))


#: Identifier shared by every record of one benchmark process, so appended
#: lines from different runs stay distinguishable.  Override with
#: ``REPRO_BENCH_RUN_ID`` (e.g. a commit sha in CI).
_RUN_ID = os.environ.get("REPRO_BENCH_RUN_ID") or uuid.uuid4().hex[:12]


def run_record(
    bench: str,
    name: str,
    seconds: float,
    *,
    engine: str | None = None,
    build_engine: str | None = None,
    num_points: int | None = None,
    build_seconds: float | None = None,
    probe_seconds: float | None = None,
    latency_p50_ms: float | None = None,
    latency_p99_ms: float | None = None,
    qps: float | None = None,
    metrics: Mapping[str, object] | None = None,
) -> dict:
    """One machine-readable measurement of a benchmark run.

    Parameters
    ----------
    bench, name:
        Benchmark module / figure id and the individual measurement name
        (e.g. ``"fig6"`` and ``"act:neighborhoods"``).
    seconds:
        Probe (or wall) time of the measurement.
    engine:
        Probe backend that produced the number (``python`` / ``vectorized``;
        ``None`` for strategies without a probe engine, e.g. BRJ).
    build_engine:
        Construction backend that built the index / approximations
        (``python`` / ``vectorized``; ``None`` when not applicable).
    num_points:
        Number of probe points; together with ``seconds`` it yields the
        ``points_per_second`` throughput field.
    build_seconds, probe_seconds:
        Phase split of the measurement: one-off index/approximation
        construction time vs. per-query probe time.  Recorded as separate
        top-level fields so the build-path and probe-path performance
        trajectories stay independently comparable across PRs.
    latency_p50_ms, latency_p99_ms, qps:
        Serving-shape measurements (the serving benchmark and any future
        concurrent benchmark): median / tail response latency in
        milliseconds and the sustained queries per second over the run.
        ``None`` for solo-kernel benchmarks.
    metrics:
        Extra metrics copied into the record verbatim.
    """
    throughput = None
    if num_points is not None and seconds > 0:
        throughput = num_points / seconds
    record: dict = {
        "run_id": _RUN_ID,
        "unix_time": time.time(),
        "bench": bench,
        "name": name,
        "engine": engine,
        "build_engine": build_engine,
        "seconds": seconds,
        "build_seconds": build_seconds,
        "probe_seconds": probe_seconds,
        "num_points": num_points,
        "points_per_second": throughput,
        "latency_p50_ms": latency_p50_ms,
        "latency_p99_ms": latency_p99_ms,
        "qps": qps,
    }
    if metrics:
        record["metrics"] = dict(metrics)
    return record


def append_run_record(record: Mapping[str, object], path: str | None = None) -> str:
    """Append one record as a JSON line; returns the path written to."""
    path = path or default_records_path()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:,.4g}"
    return str(cell)
