"""Index interfaces and instrumentation.

Two index families are defined, mirroring §3 of the paper:

* **Code indexes** (:class:`CodeIndex`) work on 1D keys obtained by
  linearizing points with a space-filling curve.  A query is a half-open key
  range ``[lo, hi)`` produced from a query cell of a raster approximation.
  Binary search over a sorted array, the B+-tree and the RadixSpline learned
  index belong to this family.
* **Spatial point indexes** (:class:`SpatialPointIndex`) work directly on 2D
  coordinates and answer axis-aligned box queries.  The R*-tree, STR-packed
  R-tree, Quadtree and Kd-tree baselines belong to this family; in the
  paper's experiments they filter with the query polygon's MBR.

Both families expose counting queries because the evaluation queries of the
paper are aggregations (COUNT of qualifying points).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.geometry.bbox import BoundingBox

__all__ = ["LookupStats", "CodeIndex", "SpatialPointIndex"]


@dataclass(slots=True)
class LookupStats:
    """Counters accumulated across lookups; used in benchmark reports."""

    lookups: int = 0
    comparisons: int = 0
    nodes_visited: int = 0

    def merge(self, other: "LookupStats") -> None:
        self.lookups += other.lookups
        self.comparisons += other.comparisons
        self.nodes_visited += other.nodes_visited

    def reset(self) -> None:
        self.lookups = 0
        self.comparisons = 0
        self.nodes_visited = 0


class CodeIndex(abc.ABC):
    """Index over sorted 1D cell codes (linearized points)."""

    def __init__(self) -> None:
        self.stats = LookupStats()

    @abc.abstractmethod
    def lower_bound(self, key: int) -> int:
        """Position of the first code ``>= key``."""

    @abc.abstractmethod
    def upper_bound(self, key: int) -> int:
        """Position of the first code ``> key``."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of indexed codes."""

    def count_range(self, lo: int, hi: int) -> int:
        """Number of codes in the half-open range ``[lo, hi)``.

        This is the core operation of the point-indexing experiment (§3): one
        lower-bound and one upper-bound lookup per query cell.
        """
        self.stats.lookups += 2
        return self.lower_bound(hi) - self.lower_bound(lo)

    def count_ranges(self, ranges: list[tuple[int, int]]) -> int:
        """Total count over a list of disjoint ranges (one query polygon)."""
        return sum(self.count_range(lo, hi) for lo, hi in ranges)

    def sorted_codes(self) -> "np.ndarray | None":
        """The sorted key array backing this index, when it materialises one.

        Every code index in this library is built over a sorted ``uint64``
        array; indexes expose it here so the batch range-count path can run
        one fused ``searchsorted`` pair regardless of which lookup structure
        (binary search, B+-tree, spline) sits on top.  Indexes without a
        materialised key array return ``None`` and fall back to the
        instrumented scalar loop.
        """
        return None

    def count_ranges_batch(self, ranges: np.ndarray) -> int:
        """Total count over an ``(m, 2)`` array of ``[lo, hi)`` ranges.

        Entry point of the vectorized probe engine: one ``np.searchsorted``
        pair over all range endpoints at once when the index exposes its
        sorted key array (:meth:`sorted_codes`), instead of two instrumented
        scalar lookups per range.  The range counts are exact positional
        differences, so the batch path returns the same integer as the
        scalar :meth:`count_ranges` loop; like the other bulk paths it is
        uninstrumented.  Indexes without a key array keep the canonical
        scalar fallback.
        """
        ranges = np.asarray(ranges, dtype=np.uint64).reshape(-1, 2)
        codes = self.sorted_codes()
        if codes is None:
            return self.count_ranges([(int(lo), int(hi)) for lo, hi in ranges])
        if ranges.shape[0] == 0:
            return 0
        los = np.searchsorted(codes, ranges[:, 0], side="left")
        his = np.searchsorted(codes, ranges[:, 1], side="left")
        return int((his - los).sum())

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate size of the index structure (excluding the data array)."""


class SpatialPointIndex(abc.ABC):
    """Index over 2D points supporting axis-aligned box queries."""

    def __init__(self) -> None:
        self.stats = LookupStats()

    @abc.abstractmethod
    def count_in_box(self, box: BoundingBox) -> int:
        """Number of indexed points inside ``box`` (borders inclusive)."""

    @abc.abstractmethod
    def query_box(self, box: BoundingBox) -> np.ndarray:
        """Indices of the points inside ``box``."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of indexed points."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate size of the index structure."""
