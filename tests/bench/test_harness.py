"""Tests for the benchmark harness helpers."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchScale,
    append_run_record,
    default_records_path,
    engines_from_env,
    format_ratio,
    format_table,
    measure,
    run_record,
    scale_from_env,
)


class TestBenchScale:
    def test_defaults_positive(self):
        scale = BenchScale()
        assert scale.num_points > 0
        assert scale.brj_points > 0

    def test_scaled_never_below_one(self):
        tiny = BenchScale().scaled(1e-9)
        assert tiny.num_points == 1
        assert tiny.census_rows == 1

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_POINTS", "123")
        monkeypatch.setenv("REPRO_BENCH_NEIGHBORHOODS", "7")
        scale = scale_from_env()
        assert scale.num_points == 123
        assert scale.num_neighborhoods == 7


class TestMeasure:
    def test_measure_returns_result_and_time(self):
        measurement, result = measure("double", lambda: 21 * 2, flavour=1.0)
        assert result == 42
        assert measurement.seconds >= 0.0
        assert measurement.metrics["flavour"] == 1.0

    def test_measurement_row(self):
        measurement, _ = measure("x", lambda: None, a=1.0)
        row = measurement.row("a", "missing")
        assert row[0] == "x"
        assert row[2] == 1.0


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bbbb", 123456.789]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_ratio(self):
        assert format_ratio(2.0, 17.0) == "8.5x"
        assert format_ratio(0.0, 1.0) == "inf"

    def test_format_small_floats(self):
        table = format_table(["v"], [[0.00001234]])
        assert "e-05" in table


class TestEnginesFromEnv:
    def test_default_runs_both_backends(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_ENGINES", raising=False)
        assert engines_from_env() == ("python", "vectorized")

    def test_single_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ENGINES", "vectorized")
        assert engines_from_env() == ("vectorized",)

    def test_empty_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ENGINES", " , ")
        with pytest.raises(ValueError):
            engines_from_env()

    def test_unknown_engine_rejected_at_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ENGINES", "vectorised")  # typo
        with pytest.raises(ValueError, match="vectorised"):
            engines_from_env()


class TestRunRecords:
    def test_record_carries_engine_and_throughput(self):
        record = run_record(
            "fig6", "act:census", 0.5, engine="vectorized", num_points=1000, metrics={"pip": 0}
        )
        assert record["engine"] == "vectorized"
        assert record["points_per_second"] == pytest.approx(2000.0)
        assert record["metrics"] == {"pip": 0}
        assert record["run_id"]
        assert record["unix_time"] > 0

    def test_run_id_stable_within_process(self):
        a = run_record("fig6", "x", 1.0)
        b = run_record("fig6", "y", 1.0)
        assert a["run_id"] == b["run_id"]

    def test_run_id_from_env(self, monkeypatch):
        import importlib

        import repro.bench.reporting as reporting

        monkeypatch.setenv("REPRO_BENCH_RUN_ID", "abc123")
        importlib.reload(reporting)
        try:
            assert reporting.run_record("fig6", "x", 1.0)["run_id"] == "abc123"
        finally:
            monkeypatch.delenv("REPRO_BENCH_RUN_ID")
            importlib.reload(reporting)

    def test_serving_fields_default_to_none(self):
        record = run_record("fig6", "act:census", 0.5)
        assert record["latency_p50_ms"] is None
        assert record["latency_p99_ms"] is None
        assert record["qps"] is None

    def test_serving_fields_recorded_at_top_level(self):
        record = run_record(
            "serving",
            "coalesced:act",
            2.0,
            engine="vectorized",
            latency_p50_ms=3.5,
            latency_p99_ms=11.25,
            qps=412.0,
        )
        assert record["latency_p50_ms"] == pytest.approx(3.5)
        assert record["latency_p99_ms"] == pytest.approx(11.25)
        assert record["qps"] == pytest.approx(412.0)
        # The serving fields survive the JSON round trip as schema fields,
        # not metrics.
        restored = json.loads(json.dumps(record))
        assert restored["qps"] == pytest.approx(412.0)
        assert "qps" not in restored.get("metrics", {})

    def test_zero_seconds_has_no_throughput(self):
        record = run_record("fig6", "act:census", 0.0, num_points=1000)
        assert record["points_per_second"] is None

    def test_append_writes_json_lines(self, tmp_path):
        path = str(tmp_path / "nested" / "runs.jsonl")
        append_run_record(run_record("fig6", "a", 1.0, engine="python", num_points=10), path)
        append_run_record(run_record("fig6", "b", 2.0, engine="vectorized", num_points=10), path)
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert [r["name"] for r in records] == ["a", "b"]
        assert records[1]["points_per_second"] == pytest.approx(5.0)

    def test_default_path_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JSON", "/tmp/x.jsonl")
        assert default_records_path() == "/tmp/x.jsonl"
