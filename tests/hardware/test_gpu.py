"""Tests for the simulated GPU device model."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.hardware import DeviceSpec, SimulatedGPU


class TestResolutionPlanning:
    def test_small_canvas_single_tile(self):
        gpu = SimulatedGPU()
        tiles = gpu.plan_tiles(1000, 800)
        assert tiles == [(0, 0, 1000, 800)]
        assert gpu.num_passes(1000, 800) == 1

    def test_large_canvas_tiled(self):
        gpu = SimulatedGPU(spec=DeviceSpec(max_texture_size=1024))
        tiles = gpu.plan_tiles(2500, 1024)
        assert len(tiles) == 3
        assert gpu.num_passes(2500, 1024) == 3
        # Tiles exactly cover the requested resolution.
        assert sum(w * h for _, _, w, h in tiles) == 2500 * 1024

    def test_invalid_resolution(self):
        with pytest.raises(DeviceError):
            SimulatedGPU().plan_tiles(0, 10)

    def test_fits_resolution(self):
        gpu = SimulatedGPU(spec=DeviceSpec(max_texture_size=2048))
        assert gpu.fits_resolution(2048, 2048)
        assert not gpu.fits_resolution(2049, 10)


class TestCostAccounting:
    def test_draw_cost_monotone_in_work(self):
        gpu = SimulatedGPU()
        small = gpu.record_draw(primitives=10, pixels=100)
        large = gpu.record_draw(primitives=10_000, pixels=1_000_000)
        assert large > small

    def test_stats_accumulate(self):
        gpu = SimulatedGPU()
        gpu.record_draw(primitives=5, pixels=50)
        gpu.record_draw(primitives=5, pixels=50)
        gpu.record_transfer(1000)
        gpu.record_pass()
        stats = gpu.stats.as_dict()
        assert stats["draw_calls"] == 2
        assert stats["primitives"] == 10
        assert stats["pixels_written"] == 100
        assert stats["bytes_transferred"] == 1000
        assert stats["passes"] == 1
        assert stats["device_time"] > 0

    def test_reset(self):
        gpu = SimulatedGPU()
        gpu.record_draw(primitives=5, pixels=5)
        gpu.reset()
        assert gpu.stats.device_time == 0.0
        assert gpu.stats.draw_calls == 0

    def test_transfer_cost_linear(self):
        gpu = SimulatedGPU()
        c1 = gpu.record_transfer(1_000)
        c2 = gpu.record_transfer(2_000)
        assert c2 == pytest.approx(2 * c1)
