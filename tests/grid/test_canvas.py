"""Tests for the canvas data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CanvasError
from repro.geometry import BoundingBox
from repro.grid import Canvas, UniformGrid


@pytest.fixture()
def grid() -> UniformGrid:
    return UniformGrid(BoundingBox(0, 0, 8, 8), 8, 8)


class TestCanvas:
    def test_empty_canvas_channels(self, grid):
        canvas = Canvas.empty(grid, ("r", "g"))
        assert canvas.channel_names == ("r", "g")
        assert canvas.channel("r").shape == (8, 8)
        assert canvas.total("r") == 0.0

    def test_missing_channel_raises(self, grid):
        canvas = Canvas.empty(grid)
        with pytest.raises(CanvasError):
            canvas.channel("z")

    def test_shape_mismatch_rejected(self, grid):
        canvas = Canvas(grid)
        with pytest.raises(CanvasError):
            canvas.set_channel("r", np.zeros((4, 4)))

    def test_set_and_total(self, grid):
        canvas = Canvas(grid)
        plane = np.zeros((8, 8))
        plane[2, 3] = 5.0
        canvas.set_channel("r", plane)
        assert canvas.total("r") == 5.0
        assert canvas.nonzero_pixels("r") == 1

    def test_copy_is_deep(self, grid):
        canvas = Canvas.empty(grid)
        clone = canvas.copy()
        clone.channel("r")[0, 0] = 7.0
        assert canvas.channel("r")[0, 0] == 0.0

    def test_same_frame(self, grid):
        a = Canvas.empty(grid)
        b = Canvas.empty(grid)
        c = Canvas.empty(UniformGrid(BoundingBox(0, 0, 8, 8), 4, 4))
        assert a.same_frame(b)
        assert not a.same_frame(c)

    def test_num_pixels_and_shape(self, grid):
        canvas = Canvas.empty(grid)
        assert canvas.num_pixels == 64
        assert canvas.shape == (8, 8)
