"""Tests for the plan representation and the cost-based optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.hardware import DeviceSpec
from repro.query import (
    AggregationQuery,
    PlanContext,
    choose_plan,
    exact_join_reference,
    execute_plan,
    explain,
    filter_refine_plan,
    median_relative_error,
    raster_aggregation_plan,
)


class TestPlans:
    def test_raster_plan_structure(self):
        plan = raster_aggregation_plan(epsilon=5.0)
        assert plan.operator == "group_reduce"
        rendered = explain(plan)
        assert "rasterize_points" in rendered
        assert "mask_blend" in rendered

    def test_filter_refine_plan_structure(self):
        plan = filter_refine_plan(grid_resolution=512)
        rendered = explain(plan)
        assert "grid_filter" in rendered
        assert "pip_refine" in rendered

    def test_invalid_epsilon(self):
        with pytest.raises(QueryError):
            raster_aggregation_plan(epsilon=0.0)

    def test_execute_unknown_plan(self, taxi_points, neighborhoods):
        from repro.query.plan import PlanNode

        context = PlanContext(points=taxi_points, regions=neighborhoods, query=AggregationQuery())
        with pytest.raises(QueryError):
            execute_plan(PlanNode("bogus"), context)


class TestOptimizer:
    def test_exact_required_chooses_exact_plan(self, taxi_points, neighborhoods):
        choice = choose_plan(taxi_points, neighborhoods, AggregationQuery(epsilon=None))
        assert choice.strategy == "exact"

    def test_loose_bound_chooses_raster_plan(self, taxi_points, neighborhoods, workload):
        choice = choose_plan(
            taxi_points, neighborhoods, AggregationQuery(epsilon=10.0), extent=workload.extent
        )
        assert choice.strategy == "raster"
        assert choice.chose_raster

    def test_extremely_tight_bound_prefers_exact_plan(self, taxi_points, neighborhoods, workload):
        """When the bound forces a canvas far beyond the device resolution,
        the exact plan becomes cheaper (the Figure 7 crossover)."""
        choice = choose_plan(
            taxi_points,
            neighborhoods,
            AggregationQuery(epsilon=0.001),
            extent=workload.extent,
            device=DeviceSpec(max_texture_size=1024),
        )
        assert choice.strategy == "exact"

    def test_costs_reported(self, taxi_points, neighborhoods, workload):
        choice = choose_plan(
            taxi_points, neighborhoods, AggregationQuery(epsilon=10.0), extent=workload.extent
        )
        assert choice.raster_cost > 0
        assert choice.exact_cost > 0

    def test_chosen_plans_execute_and_agree_with_reference(
        self, taxi_points, neighborhoods, workload
    ):
        reference = exact_join_reference(taxi_points, neighborhoods)
        query = AggregationQuery(epsilon=10.0)
        choice = choose_plan(taxi_points, neighborhoods, query, extent=workload.extent)
        context = PlanContext(
            points=taxi_points, regions=neighborhoods, query=query, extent=workload.extent
        )
        result = execute_plan(choice.plan, context)
        assert median_relative_error(np.asarray(result), reference.counts.astype(float)) < 0.02
