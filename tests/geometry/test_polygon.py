"""Tests for polygons, rings and multipolygons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import MultiPolygon, Point, Polygon, Ring


class TestRing:
    def test_closing_vertex_dropped(self):
        ring = Ring([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(ring) == 3

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Ring([(0, 0), (1, 1)])

    def test_signed_area_orientation(self):
        ccw = Ring([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert ccw.is_ccw
        assert ccw.signed_area == pytest.approx(1.0)
        cw = ccw.reversed()
        assert not cw.is_ccw
        assert cw.signed_area == pytest.approx(-1.0)

    def test_oriented_no_copy_when_correct(self):
        ring = Ring([(0, 0), (1, 0), (1, 1)])
        assert ring.oriented(ccw=True) is ring

    def test_perimeter(self):
        ring = Ring([(0, 0), (3, 0), (3, 4)])
        assert ring.perimeter() == pytest.approx(12.0)

    def test_segments_close_the_ring(self):
        ring = Ring([(0, 0), (1, 0), (1, 1)])
        segs = list(ring.segments())
        assert len(segs) == 3
        assert segs[-1].end == Point(0.0, 0.0)


class TestPolygon:
    def test_exterior_normalised_ccw(self):
        poly = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])  # given clockwise
        assert poly.exterior.is_ccw

    def test_holes_normalised_cw(self, unit_square):
        assert all(not h.is_ccw for h in unit_square.holes)

    def test_area_subtracts_holes(self, unit_square):
        assert unit_square.area == pytest.approx(100.0 - 4.0)

    def test_num_vertices_counts_holes(self, unit_square):
        assert unit_square.num_vertices == 8

    def test_bounds(self, unit_square):
        assert unit_square.bounds().as_tuple() == (0.0, 0.0, 10.0, 10.0)

    def test_centroid_of_square(self):
        poly = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        c = poly.centroid()
        assert (c.x, c.y) == pytest.approx((1.0, 1.0))

    def test_contains_point_with_hole(self, unit_square):
        assert unit_square.contains_point(Point(1.0, 1.0))
        assert not unit_square.contains_point(Point(5.0, 5.0))  # in the hole
        assert not unit_square.contains_point(Point(20.0, 20.0))

    def test_contains_point_concave(self, l_shape):
        assert l_shape.contains_point(Point(1.0, 5.0))
        assert not l_shape.contains_point(Point(5.0, 5.0))  # in the notch

    def test_contains_points_matches_scalar(self, l_shape, rng):
        xs = rng.uniform(-1, 7, 300)
        ys = rng.uniform(-1, 7, 300)
        vector = l_shape.contains_points(xs, ys)
        scalar = np.array([l_shape.contains_point(Point(x, y)) for x, y in zip(xs, ys)])
        np.testing.assert_array_equal(vector, scalar)

    def test_translated(self, l_shape):
        moved = l_shape.translated(10.0, 5.0)
        assert moved.contains_point(Point(11.0, 10.0))
        assert moved.area == pytest.approx(l_shape.area)

    def test_scaled_area(self, l_shape):
        scaled = l_shape.scaled(2.0)
        assert scaled.area == pytest.approx(4.0 * l_shape.area)

    def test_scaled_invalid_factor(self, l_shape):
        with pytest.raises(GeometryError):
            l_shape.scaled(0.0)

    def test_boundary_segments_count(self, unit_square):
        assert len(list(unit_square.boundary_segments())) == 8


class TestMultiPolygon:
    def test_requires_parts(self):
        with pytest.raises(GeometryError):
            MultiPolygon([])

    def test_area_and_vertices_sum(self, unit_square, l_shape):
        multi = MultiPolygon([unit_square, l_shape.translated(20.0, 0.0)])
        assert multi.area == pytest.approx(unit_square.area + l_shape.area)
        assert multi.num_vertices == unit_square.num_vertices + l_shape.num_vertices

    def test_bounds_cover_all_parts(self, unit_square, l_shape):
        multi = MultiPolygon([unit_square, l_shape.translated(20.0, 0.0)])
        box = multi.bounds()
        assert box.contains_box(unit_square.bounds())

    def test_contains_point_any_part(self, unit_square, l_shape):
        multi = MultiPolygon([unit_square, l_shape.translated(20.0, 0.0)])
        assert multi.contains_point(Point(1.0, 1.0))
        assert multi.contains_point(Point(21.0, 5.0))
        assert not multi.contains_point(Point(15.0, 15.0))

    def test_contains_points_vectorised(self, unit_square, l_shape):
        multi = MultiPolygon([unit_square, l_shape.translated(20.0, 0.0)])
        xs = np.array([1.0, 21.0, 15.0])
        ys = np.array([1.0, 5.0, 15.0])
        assert multi.contains_points(xs, ys).tolist() == [True, True, False]

    def test_centroid_weighted(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(10, 0), (12, 0), (12, 2), (10, 2)])
        multi = MultiPolygon([a, b])
        assert multi.centroid().x == pytest.approx(6.0)
