"""DURABLE — WAL'd ingest overhead, crash-recovery replay, flush-tail latency.

Three costs of the durability subsystem, each against its no-durability
baseline:

* **WAL overhead** — the same micro-batched insert stream into an in-memory
  store (no log) and a durable store (append + CRC + one group-commit fsync
  per batch).  The contract: logging costs at most 2x unlogged ingest at
  full scale — the log is sequential writes of bytes the memtable already
  holds, one fsync per public mutation.
* **Recovery replay** — `SpatialStore.open` over the directory the ingest
  left behind (no checkpoint: the whole stream replays from the WAL).
  Recovery is the same deterministic code path as live ingest minus fsyncs,
  so replayed records/second should beat ingest records/second.
* **Flush-tail latency** — per-insert latencies with stop-the-world
  size-tiered compaction vs budgeted incremental compaction.  Incremental
  mode bounds merge work per flush (one merge, byte-budgeted), trading a
  standing `compaction_debt_bytes` gauge for a flatter tail: at full scale
  its p99 insert latency must not exceed stop-the-world's.

Every measurement appends a JSON run record (`wal_overhead_ratio`,
`recovery_seconds`, `p99_flush_ms` and friends) so the durability cost
trajectory stays comparable across PRs.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import append_run_record, is_smoke_run, run_record
from repro.store import SpatialStore

MEMTABLE_CAPACITY = 2048 if is_smoke_run() else 8192
STORE_LEVEL = 8 if is_smoke_run() else 12


@pytest.fixture(scope="module")
def batches(workload, scale):
    """The insert stream, pre-sliced so slicing cost stays out of timings."""
    points = workload.taxi_points(scale.ingest_points)
    bounds = np.linspace(0, len(points), scale.ingest_batches + 1, dtype=np.int64)
    return [
        points.select(np.arange(int(lo), int(hi)))
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]


@pytest.fixture(scope="module")
def results():
    """Cross-test channel: the WAL test leaves a directory for recovery."""
    return {}


def _ingest(store, batches) -> tuple[float, list[float]]:
    """Drive the stream; returns (total seconds, per-insert latencies ms)."""
    latencies = []
    start_all = time.perf_counter()
    for batch in batches:
        start = time.perf_counter()
        store.insert(batch)
        latencies.append((time.perf_counter() - start) * 1e3)
    return time.perf_counter() - start_all, latencies


def test_wal_ingest_overhead(tmp_path_factory, batches, workload, scale, results):
    """Logged vs unlogged ingest of the identical stream."""
    frame = workload.frame()
    attributes = batches[0].attribute_names
    unlogged = SpatialStore(
        frame, STORE_LEVEL, attributes=attributes, memtable_capacity=MEMTABLE_CAPACITY
    )
    unlogged_seconds, _ = _ingest(unlogged, batches)

    directory = tmp_path_factory.mktemp("durable") / "store"
    durable = SpatialStore.create(
        directory,
        frame,
        STORE_LEVEL,
        attributes=attributes,
        memtable_capacity=MEMTABLE_CAPACITY,
    )
    wal_seconds, _ = _ingest(durable, batches)
    wal_records = durable.wal.record_count
    # Abandon without close/save: recovery below replays the full stream.
    results["directory"] = directory
    results["wal_seconds"] = wal_seconds
    results["num_points"] = sum(len(b) for b in batches)

    ratio = wal_seconds / max(unlogged_seconds, 1e-9)
    append_run_record(
        run_record(
            "durable",
            "wal-overhead",
            wal_seconds,
            num_points=results["num_points"],
            metrics={
                "unlogged_ingest_seconds": unlogged_seconds,
                "wal_ingest_seconds": wal_seconds,
                "wal_overhead_ratio": ratio,
                "wal_records": wal_records,
                "batches": len(batches),
            },
        )
    )
    assert durable.num_live == unlogged.num_live
    if not is_smoke_run():
        # Tiny smoke batches are fsync-dominated noise; the bar is full scale.
        assert ratio <= 2.0, f"WAL ingest overhead {ratio:.2f}x exceeds 2x"


def test_recovery_replay_seconds(results):
    """Cold open of the abandoned durable directory: full WAL replay."""
    directory = results.get("directory")
    assert directory is not None, "run test_wal_ingest_overhead first"
    start = time.perf_counter()
    recovered = SpatialStore.open(directory)
    recovery_seconds = time.perf_counter() - start
    report = recovered.last_recovery
    assert report is not None and report.inserted_points == results["num_points"]
    append_run_record(
        run_record(
            "durable",
            "recovery-replay",
            recovery_seconds,
            num_points=results["num_points"],
            metrics={
                "recovery_seconds": recovery_seconds,
                "replayed_records": report.records,
                "replayed_inserts": report.inserts,
                "replay_records_per_second": report.records
                / max(recovery_seconds, 1e-9),
                "ingest_vs_replay_ratio": results["wal_seconds"]
                / max(recovery_seconds, 1e-9),
            },
        )
    )
    recovered.close()


@pytest.mark.parametrize("mode", ["stop-the-world", "incremental"])
def test_flush_tail_latency(mode, batches, workload, results):
    """p99 insert latency: budgeted compaction must flatten the tail."""
    store = SpatialStore(
        workload.frame(),
        STORE_LEVEL,
        attributes=batches[0].attribute_names,
        memtable_capacity=max(256, MEMTABLE_CAPACITY // 8),
        incremental_compaction=(mode == "incremental"),
    )
    seconds, latencies = _ingest(store, batches)
    p50, p99 = (float(np.percentile(latencies, q)) for q in (50, 99))
    results[f"p99:{mode}"] = p99
    append_run_record(
        run_record(
            "durable",
            f"flush-tail:{mode}",
            seconds,
            num_points=sum(len(b) for b in batches),
            latency_p50_ms=p50,
            latency_p99_ms=p99,
            metrics={
                "mode": mode,
                "p99_flush_ms": p99,
                "max_flush_ms": float(np.max(latencies)),
                "flushes": store.stats.flushes,
                "compactions": store.stats.compactions,
                "final_compaction_debt_bytes": store.compaction_debt(),
            },
        )
    )
    if mode == "incremental":
        # Incremental answers must still match a from-scratch rebuild.
        assert store.num_live == store.rebuilt().num_live
        if not is_smoke_run():
            assert p99 <= results["p99:stop-the-world"], (
                f"incremental p99 {p99:.2f}ms worse than "
                f"stop-the-world {results['p99:stop-the-world']:.2f}ms"
            )
