"""Tests for the Adaptive Cell Trie polygon index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import HierarchicalRasterApproximation
from repro.curves import CellId
from repro.errors import IndexError_
from repro.geometry import BoundingBox, Polygon
from repro.grid import GridFrame
from repro.index import AdaptiveCellTrie
from repro.query import max_distance_to_boundary


@pytest.fixture(scope="module")
def frame() -> GridFrame:
    return GridFrame(BoundingBox(0.0, 0.0, 100.0, 100.0))


@pytest.fixture(scope="module")
def regions() -> list[Polygon]:
    return [
        Polygon([(5.0, 5.0), (30.0, 5.0), (30.0, 30.0), (5.0, 30.0)]),
        Polygon([(40.0, 40.0), (70.0, 40.0), (70.0, 70.0), (40.0, 70.0)]),
        Polygon([(28.0, 5.0), (50.0, 5.0), (50.0, 25.0), (28.0, 25.0)]),  # overlaps region 0
    ]


@pytest.fixture(scope="module")
def trie(frame, regions) -> AdaptiveCellTrie:
    return AdaptiveCellTrie.build(regions, frame, epsilon=1.0)


class TestLookups:
    def test_interior_points_found(self, trie):
        assert trie.lookup_point(10.0, 10.0) == [0]
        assert trie.lookup_point(50.0, 50.0) == [1]

    def test_point_in_overlap_matches_both(self, trie):
        matches = set(trie.lookup_point(29.0, 10.0))
        assert matches == {0, 2}

    def test_point_far_outside_matches_nothing(self, trie):
        assert trie.lookup_point(90.0, 90.0) == []

    def test_lookup_points_bulk(self, trie):
        results = trie.lookup_points(np.array([10.0, 90.0]), np.array([10.0, 90.0]))
        assert results[0] == [0]
        assert results[1] == []

    def test_matches_respect_distance_bound(self, trie, regions, rng):
        """Any disagreement with the exact answer involves points within epsilon
        of the polygon boundary — the defining guarantee of the index."""
        epsilon = 1.0
        xs = rng.uniform(0, 80, 500)
        ys = rng.uniform(0, 80, 500)
        for polygon_id, region in enumerate(regions):
            exact = region.contains_points(xs, ys)
            approx = np.array([polygon_id in trie.lookup_point(float(x), float(y)) for x, y in zip(xs, ys)])
            disagreement = exact != approx
            if disagreement.any():
                assert max_distance_to_boundary(xs[disagreement], ys[disagreement], region) <= epsilon

    def test_no_false_negatives_with_conservative_build(self, trie, regions, rng):
        xs = rng.uniform(0, 80, 500)
        ys = rng.uniform(0, 80, 500)
        for polygon_id, region in enumerate(regions):
            exact = region.contains_points(xs, ys)
            for x, y, inside in zip(xs, ys, exact):
                if inside:
                    assert polygon_id in trie.lookup_point(float(x), float(y))


class TestStructure:
    def test_counts(self, trie, regions):
        assert trie.num_polygons == len(regions)
        assert trie.num_cells > 0
        assert trie.num_nodes > 1
        assert trie.memory_bytes() > trie.num_cells * 8

    def test_larger_cells_closer_to_root(self, frame):
        """Coarse (interior) cells are stored at shallower trie depths than
        fine boundary cells."""
        region = Polygon([(10.0, 10.0), (60.0, 10.0), (60.0, 60.0), (10.0, 60.0)])
        approx = HierarchicalRasterApproximation.from_bound(region, frame, epsilon=1.0)
        trie = AdaptiveCellTrie(frame, max_level=approx.max_level)
        trie.insert_approximation(0, approx)
        interior_levels = [c.cell.level for c in approx.cells if not c.is_boundary]
        boundary_levels = [c.cell.level for c in approx.cells if c.is_boundary]
        assert min(interior_levels) < min(boundary_levels)

    def test_insert_too_deep_cell_rejected(self, frame):
        trie = AdaptiveCellTrie(frame, max_level=3)
        with pytest.raises(IndexError_):
            trie.insert_cell(0, CellId.from_xy(0, 0, 5))

    def test_invalid_max_level(self, frame):
        with pytest.raises(IndexError_):
            AdaptiveCellTrie(frame, max_level=-1)

    def test_lookup_cell_finds_ancestor_values(self, frame):
        trie = AdaptiveCellTrie(frame, max_level=6)
        coarse = CellId.from_xy(1, 1, 2)
        trie.insert_cell(7, coarse)
        fine = CellId.from_xy(1 * 16 + 3, 1 * 16 + 5, 6)  # a descendant of coarse
        assert trie.lookup_cell(fine) == [7]
