"""Parity regression tests: batch build engines ≡ python-recursion oracle.

The per-cell recursive refinement is the correctness oracle of the batch
build engine refactor; the level-synchronous frontier sweep — per-region
(``vectorized``) and suite-wide (``suite``) — must emit the **identical cell
set** — codes, levels and boundary flags — for every construction mode
(distance-bounded and budgeted, conservative and non-conservative), on
convex blobs, concave shapes, polygons with holes and multipolygons.
FlatACT bulk loading must likewise reproduce the trie flattening bit for
bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import (
    BUILD_ENGINES,
    DEFAULT_BUILD_ENGINE,
    HierarchicalRasterApproximation,
    get_build_engine,
)
from repro.approx.build_engine import BuildEngine
from repro.data import NYCWorkload, noisy_convex_polygon
from repro.errors import ApproximationError
from repro.geometry import BoundingBox, MultiPolygon, Polygon
from repro.grid import GridFrame
from repro.index import AdaptiveCellTrie, FlatACT


def cell_set(approx: HierarchicalRasterApproximation) -> set[tuple[int, int, bool]]:
    codes, levels, boundary = approx.cell_arrays()
    return set(zip(levels.tolist(), codes.tolist(), boundary.tolist()))


@pytest.fixture(scope="module")
def frame() -> GridFrame:
    return GridFrame(BoundingBox(0.0, 0.0, 100.0, 100.0))


@pytest.fixture(
    scope="module",
    params=["blob", "concave", "holed", "multi"],
)
def region(request):
    if request.param == "blob":
        return noisy_convex_polygon(50.0, 50.0, 18.0, 22, seed=11)
    if request.param == "concave":
        return Polygon([(5, 5), (60, 5), (60, 25), (25, 25), (25, 60), (5, 60)])
    if request.param == "holed":
        return Polygon(
            [(10.0, 10.0), (90.0, 10.0), (90.0, 90.0), (10.0, 90.0)],
            holes=[[(40.0, 40.0), (60.0, 40.0), (60.0, 60.0), (40.0, 60.0)]],
        )
    return MultiPolygon(
        [
            noisy_convex_polygon(28.0, 30.0, 12.0, 14, seed=3),
            noisy_convex_polygon(70.0, 68.0, 13.0, 18, seed=4),
        ]
    )


class TestFrontierSweepParity:
    """`_build_frontier` emits exactly the oracle's cells."""

    @pytest.mark.parametrize("conservative", [True, False])
    @pytest.mark.parametrize("max_cells", [None, 4, 16, 64, 256])
    def test_cell_set_identical(self, frame, region, conservative, max_cells):
        oracle = HierarchicalRasterApproximation._build(
            region, frame, max_level=8, max_cells=max_cells, conservative=conservative
        )
        swept = HierarchicalRasterApproximation._build_frontier(
            region, frame, max_level=8, max_cells=max_cells, conservative=conservative
        )
        assert cell_set(oracle) == cell_set(swept)
        assert oracle.max_level == swept.max_level
        assert oracle.num_boundary_cells == swept.num_boundary_cells

    def test_from_bound_engines_agree(self, frame, region):
        oracle = HierarchicalRasterApproximation.from_bound(
            region, frame, epsilon=2.0, engine="python"
        )
        swept = HierarchicalRasterApproximation.from_bound(
            region, frame, epsilon=2.0, engine="vectorized"
        )
        assert cell_set(oracle) == cell_set(swept)

    def test_budget_engines_agree_through_public_api(self, frame, region):
        per_engine = [
            HierarchicalRasterApproximation.from_cell_budget(
                region, frame, max_cells=64, engine=engine
            )
            for engine in BUILD_ENGINES
        ]
        for other in per_engine[1:]:
            assert cell_set(per_engine[0]) == cell_set(other)

    def test_covers_points_identical(self, frame, region, rng):
        xs = rng.uniform(0.0, 100.0, 500)
        ys = rng.uniform(0.0, 100.0, 500)
        oracle = HierarchicalRasterApproximation.from_cell_budget(
            region, frame, max_cells=128, engine="python"
        )
        swept = HierarchicalRasterApproximation.from_cell_budget(
            region, frame, max_cells=128, engine="vectorized"
        )
        np.testing.assert_array_equal(
            oracle.covers_points(xs, ys), swept.covers_points(xs, ys)
        )


class TestBatchConstruction:
    @pytest.mark.parametrize("engine", BUILD_ENGINES)
    def test_batch_equals_individual_builds(self, frame, engine):
        regions = [noisy_convex_polygon(30.0 + 8 * k, 40.0, 9.0, 12, seed=k) for k in range(5)]
        batch = HierarchicalRasterApproximation.from_cell_budget_batch(
            regions, frame, max_cells=64, engine=engine
        )
        assert len(batch) == len(regions)
        for region, approx in zip(regions, batch):
            single = HierarchicalRasterApproximation.from_cell_budget(
                region, frame, max_cells=64, engine="python"
            )
            assert cell_set(single) == cell_set(approx)

    def test_budget_validated(self, frame):
        blob = noisy_convex_polygon(50.0, 50.0, 10.0, 10, seed=1)
        with pytest.raises(ApproximationError):
            HierarchicalRasterApproximation.from_cell_budget_batch([blob], frame, max_cells=0)

    def test_from_cell_arrays_rejects_mismatched_shapes(self, frame):
        blob = noisy_convex_polygon(50.0, 50.0, 10.0, 10, seed=1)
        with pytest.raises(ApproximationError):
            HierarchicalRasterApproximation.from_cell_arrays(
                blob,
                frame,
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=bool),
                max_level=4,
                conservative=True,
            )


class TestFlatACTBulkLoad:
    """`FlatACT.from_cells` / `FlatACT.build` ≡ flattening the per-insert trie."""

    @pytest.fixture(scope="class")
    def suite(self):
        workload = NYCWorkload(extent=BoundingBox(0.0, 0.0, 1000.0, 1000.0), seed=5)
        return workload.neighborhoods(count=7), workload.frame()

    def test_bulk_load_matches_trie_flatten(self, suite):
        regions, frame = suite
        trie = AdaptiveCellTrie.build(regions, frame, epsilon=8.0)
        via_trie = trie.flattened()
        via_bulk = FlatACT.build(regions, frame, epsilon=8.0)
        assert via_bulk.max_level == via_trie.max_level
        assert via_bulk.num_cells == via_trie.num_cells
        assert via_bulk.num_levels == via_trie.num_levels
        for (l1, k1, o1, p1), (l2, k2, o2, p2) in zip(via_trie._levels, via_bulk._levels):
            assert l1 == l2
            np.testing.assert_array_equal(k1, k2)
            np.testing.assert_array_equal(o1, o2)
            np.testing.assert_array_equal(p1, p2)

    def test_bulk_index_answers_probes_like_trie(self, suite, rng):
        regions, frame = suite
        trie = AdaptiveCellTrie.build(regions, frame, epsilon=8.0)
        flat = FlatACT.build(regions, frame, epsilon=8.0)
        xs = rng.uniform(0.0, 1000.0, 800)
        ys = rng.uniform(0.0, 1000.0, 800)
        offsets_a, pids_a = trie.lookup_points_batch(xs, ys)
        offsets_b, pids_b = flat.lookup_points_batch(xs, ys)
        np.testing.assert_array_equal(offsets_a, offsets_b)
        np.testing.assert_array_equal(pids_a, pids_b)
        for k in range(0, 800, 97):
            assert flat.lookup_point(float(xs[k]), float(ys[k])) == trie.lookup_point(
                float(xs[k]), float(ys[k])
            )

    def test_flattened_is_self(self, suite):
        regions, frame = suite
        flat = FlatACT.build(regions, frame, epsilon=8.0)
        assert flat.flattened() is flat

    def test_from_cells_rejects_mismatched_arrays(self, suite):
        _, frame = suite
        with pytest.raises(Exception):
            FlatACT.from_cells(
                frame,
                4,
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=np.int64),
            )


class TestSuiteSweepParity:
    """The suite-wide sweep emits exactly the per-region sweeps' cells."""

    @pytest.fixture(scope="class")
    def mixed_suite(self, frame):
        return [
            noisy_convex_polygon(50.0, 50.0, 18.0, 22, seed=11),
            Polygon([(5, 5), (60, 5), (60, 25), (25, 25), (25, 60), (5, 60)]),
            Polygon(
                [(10.0, 10.0), (90.0, 10.0), (90.0, 90.0), (10.0, 90.0)],
                holes=[[(40.0, 40.0), (60.0, 40.0), (60.0, 60.0), (40.0, 60.0)]],
            ),
            MultiPolygon(
                [
                    noisy_convex_polygon(28.0, 30.0, 12.0, 14, seed=3),
                    noisy_convex_polygon(70.0, 68.0, 13.0, 18, seed=4),
                ]
            ),
        ] + [noisy_convex_polygon(30.0 + 7 * k, 40.0, 8.0, 12, seed=k) for k in range(4)]

    @pytest.mark.parametrize("conservative", [True, False])
    @pytest.mark.parametrize("max_cells", [None, 4, 16, 64, 256])
    def test_suite_sweep_identical_to_per_region(
        self, frame, mixed_suite, conservative, max_cells
    ):
        suite = HierarchicalRasterApproximation._build_frontier_suite(
            mixed_suite, frame, max_level=8, max_cells=max_cells, conservative=conservative
        )
        assert len(suite) == len(mixed_suite)
        for region, batched in zip(mixed_suite, suite):
            single = HierarchicalRasterApproximation._build_frontier(
                region, frame, max_level=8, max_cells=max_cells, conservative=conservative
            )
            assert cell_set(single) == cell_set(batched)
            assert single.max_level == batched.max_level
            # Stronger than set equality: the emitted arrays match in order,
            # so downstream bulk loads see bit-identical inputs.
            for a, b in zip(single.cell_arrays(), batched.cell_arrays()):
                np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("max_cells", [1, 2, 3])
    def test_tiny_budget_parity_all_engines(self, frame, mixed_suite, max_cells):
        """1–3 cell budgets stop before the first split on every backend."""
        oracle = [
            HierarchicalRasterApproximation.from_cell_budget(
                region, frame, max_cells=max_cells, engine="python"
            )
            for region in mixed_suite
        ]
        for engine in BUILD_ENGINES:
            batch = HierarchicalRasterApproximation.from_cell_budget_batch(
                mixed_suite, frame, max_cells=max_cells, engine=engine
            )
            for ref, approx in zip(oracle, batch):
                assert cell_set(ref) == cell_set(approx)
                assert approx.num_cells <= max_cells

    def test_suite_bound_build_matches_flat_act(self, frame, mixed_suite):
        via_suite = FlatACT.build(mixed_suite, frame, epsilon=4.0, build_engine="suite")
        via_per_region = FlatACT.build(
            mixed_suite, frame, epsilon=4.0, build_engine="vectorized"
        )
        assert via_suite.num_cells == via_per_region.num_cells
        for (l1, k1, o1, p1), (l2, k2, o2, p2) in zip(
            via_suite._levels, via_per_region._levels
        ):
            assert l1 == l2
            np.testing.assert_array_equal(k1, k2)
            np.testing.assert_array_equal(o1, o2)
            np.testing.assert_array_equal(p1, p2)

    def test_empty_suite(self, frame):
        assert (
            HierarchicalRasterApproximation._build_frontier_suite(
                [], frame, max_level=8, max_cells=None, conservative=True
            )
            == []
        )


class TestEngineResolution:
    def test_default_is_suite(self):
        assert DEFAULT_BUILD_ENGINE == "suite"
        assert get_build_engine(None).name == "suite"

    def test_engine_instance_passthrough(self):
        engine = get_build_engine("python")
        assert get_build_engine(engine) is engine
        assert isinstance(engine, BuildEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ApproximationError):
            get_build_engine("gpu")


class TestReplayBudget:
    """The vectorised budget replay vs the oracle's sequential loop.

    The suite/frontier sweeps replay the python oracle's best-first budget
    accounting over per-parent cell deltas; `_replay_budget` does it with
    prefix sums and a first-failure cutoff.  Deltas can be negative (all
    children outside), so the prefix is non-monotone — the property-style
    sweep below covers exactly those shapes.
    """

    @staticmethod
    def _oracle(deltas, slice_starts, slice_stops, base_totals, max_cells):
        split_upto = np.empty(slice_starts.shape[0], dtype=np.int64)
        new_totals = np.empty(slice_starts.shape[0], dtype=np.int64)
        for s, (lo, hi, total) in enumerate(
            zip(slice_starts.tolist(), slice_stops.tolist(), base_totals.tolist())
        ):
            upto = lo
            for p in range(lo, hi):
                if total + 3 > max_cells:
                    break
                total += int(deltas[p])
                upto = p + 1
            split_upto[s] = upto
            new_totals[s] = total
        return split_upto, new_totals

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_sequential_loop(self, seed):
        from repro.approx.hierarchical_raster import _replay_budget

        rng = np.random.default_rng(seed)
        num_slices = int(rng.integers(1, 8))
        sizes = rng.integers(1, 20, size=num_slices)
        slice_stops = np.cumsum(sizes)
        slice_starts = np.concatenate(([0], slice_stops[:-1]))
        n = int(slice_stops[-1])
        # The sweep's real deltas lie in [-1, 3] (4 children, each inside /
        # boundary / outside, minus the parent).
        deltas = rng.integers(-1, 4, size=n).astype(np.int64)
        base_totals = rng.integers(1, 30, size=num_slices).astype(np.int64)
        max_cells = int(rng.integers(4, 40))

        got = _replay_budget(deltas, slice_starts, slice_stops, base_totals, max_cells)
        want = self._oracle(deltas, slice_starts, slice_stops, base_totals, max_cells)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])

    def test_budget_already_exhausted(self):
        from repro.approx.hierarchical_raster import _replay_budget

        deltas = np.array([3, 3], dtype=np.int64)
        split_upto, new_totals = _replay_budget(
            deltas,
            np.array([0], dtype=np.int64),
            np.array([2], dtype=np.int64),
            np.array([10], dtype=np.int64),
            max_cells=12,
        )
        assert split_upto.tolist() == [0]
        assert new_totals.tolist() == [10]

    def test_negative_deltas_reopen_budget_for_later_parents(self):
        """A non-monotone prefix: parent 1 fails, so the loop stops there even
        though parent 2's delta would bring the total back under budget."""
        from repro.approx.hierarchical_raster import _replay_budget

        deltas = np.array([3, -1, -1], dtype=np.int64)
        split_upto, new_totals = _replay_budget(
            deltas,
            np.array([0], dtype=np.int64),
            np.array([3], dtype=np.int64),
            np.array([5], dtype=np.int64),
            max_cells=10,
        )
        # Parent 0 splits (5+3=8); parent 1 sees 8+3 > 10 and stops the loop.
        assert split_upto.tolist() == [1]
        assert new_totals.tolist() == [8]
