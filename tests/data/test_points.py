"""Tests for the synthetic point generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import clustered_points, taxi_like_points, uniform_points
from repro.errors import WorkloadError
from repro.geometry import BoundingBox

EXTENT = BoundingBox(0.0, 0.0, 100.0, 200.0)


class TestUniformPoints:
    def test_count_and_extent(self):
        points = uniform_points(500, EXTENT, seed=1)
        assert len(points) == 500
        min_x, min_y, max_x, max_y = points.bounds()
        assert min_x >= 0.0 and max_x <= 100.0
        assert min_y >= 0.0 and max_y <= 200.0

    def test_deterministic(self):
        a = uniform_points(100, EXTENT, seed=5)
        b = uniform_points(100, EXTENT, seed=5)
        np.testing.assert_array_equal(a.xs, b.xs)

    def test_different_seeds_differ(self):
        a = uniform_points(100, EXTENT, seed=5)
        b = uniform_points(100, EXTENT, seed=6)
        assert not np.array_equal(a.xs, b.xs)

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_points(-1, EXTENT)


class TestClusteredPoints:
    def test_points_stay_in_extent(self):
        points = clustered_points(2000, EXTENT, seed=2)
        assert len(points) == 2000
        assert (points.xs >= 0.0).all() and (points.xs <= 100.0).all()
        assert (points.ys >= 0.0).all() and (points.ys <= 200.0).all()

    def test_clustering_is_denser_than_uniform(self):
        """Clustered data concentrates mass: the densest small cell holds far
        more points than under a uniform distribution."""
        clustered = clustered_points(5000, EXTENT, seed=3, cluster_fraction=0.9)
        uniform = uniform_points(5000, EXTENT, seed=3)

        def max_cell_count(points) -> int:
            hist, _, _ = np.histogram2d(points.xs, points.ys, bins=20)
            return int(hist.max())

        assert max_cell_count(clustered) > 2 * max_cell_count(uniform)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            clustered_points(10, EXTENT, cluster_fraction=1.5)
        with pytest.raises(WorkloadError):
            clustered_points(10, EXTENT, num_clusters=0)


class TestTaxiLikePoints:
    def test_attributes_present(self):
        points = taxi_like_points(1000, EXTENT, seed=4)
        assert set(points.attribute_names) == {"fare", "passengers"}
        fares = points.attribute("fare")
        passengers = points.attribute("passengers")
        assert (fares > 0).all()
        assert passengers.min() >= 1 and passengers.max() <= 6

    def test_passenger_distribution_skewed_to_single(self):
        points = taxi_like_points(5000, EXTENT, seed=4)
        passengers = points.attribute("passengers")
        assert (passengers == 1).mean() > 0.5

    def test_deterministic(self):
        a = taxi_like_points(200, EXTENT, seed=9)
        b = taxi_like_points(200, EXTENT, seed=9)
        np.testing.assert_array_equal(a.attribute("fare"), b.attribute("fare"))
