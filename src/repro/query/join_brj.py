"""Bounded Raster Join (BRJ) — the GPU join of §5.2 / Figure 7.

BRJ evaluates the spatial aggregation query entirely on rasterized canvases:

1. the points are blended into a single canvas whose pixels hold partial
   aggregates (count and value sum per pixel),
2. every polygon is rasterized onto the same canvas frame,
3. the polygon mask is combined with the point canvas (mask ∘ blend) and the
   surviving pixels are reduced to the polygon's aggregate.

Because the pixel size is derived from the distance bound, the result is an
``epsilon``-bounded approximation and **no point-in-polygon test is ever
executed**.  When the required canvas resolution exceeds what the (simulated)
GPU supports, the canvas is split into device-sized tiles and one aggregation
pass runs per tile — which is exactly why BRJ loses its advantage for very
tight bounds in Figure 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.approx.distance_bound import cell_side_for_bound
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.rasterizer import rasterize_points, rasterize_polygon
from repro.grid.uniform_grid import UniformGrid
from repro.hardware.gpu import SimulatedGPU
from repro.query.spec import AggregationQuery

__all__ = ["BRJResult", "bounded_raster_join"]

Region = Polygon | MultiPolygon


@dataclass(slots=True)
class BRJResult:
    """Result of one Bounded Raster Join run.

    ``wall_seconds`` is split into a build phase (planning plus blending the
    points into the per-tile aggregate canvases) and a probe phase (masking
    every polygon's rasterization against those canvases and reducing), so
    benchmark records report the same ``build_seconds`` / ``probe_seconds``
    pair as the point-probe joins.
    """

    aggregates: np.ndarray
    counts: np.ndarray
    epsilon: float
    resolution: tuple[int, int]
    num_passes: int
    wall_seconds: float
    device_seconds: float
    build_seconds: float = 0.0
    probe_seconds: float = 0.0
    extra: dict = field(default_factory=dict)


def bounded_raster_join(
    points: PointSet,
    regions: list[Region],
    epsilon: float,
    extent: BoundingBox | None = None,
    query: AggregationQuery | None = None,
    gpu: SimulatedGPU | None = None,
    point_batch_size: int = 1_000_000,
) -> BRJResult:
    """Run the Bounded Raster Join at the given distance bound.

    Parameters
    ----------
    points, regions:
        The join inputs.
    epsilon:
        Distance bound in data units; the pixel side is ``epsilon / sqrt(2)``.
    extent:
        Canvas extent; defaults to the union of the point and polygon bounds.
    query:
        Aggregation specification (COUNT by default).
    gpu:
        Simulated device; a default device is created when omitted.  Device
        counters accumulate across calls when the caller passes its own.
    point_batch_size:
        Number of points per simulated host-to-device transfer batch (the
        paper streams the 600M points in batches).
    """
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    query = query or AggregationQuery()
    gpu = gpu or SimulatedGPU()
    filtered = query.filtered_points(points)
    values = query.values(filtered)

    if extent is None:
        extent = _union_extent(filtered, regions)

    start = time.perf_counter()
    device_start = gpu.stats.device_time

    cell_side = cell_side_for_bound(epsilon)
    full_nx = max(1, int(np.ceil(extent.width / cell_side)))
    full_ny = max(1, int(np.ceil(extent.height / cell_side)))
    tiles = gpu.plan_tiles(full_nx, full_ny)

    # Simulate streaming the point batches to the device once.
    bytes_per_point = 2 * 8 + 8  # x, y and one value channel
    for batch_start in range(0, len(filtered), point_batch_size):
        batch = min(point_batch_size, len(filtered) - batch_start)
        gpu.record_transfer(batch * bytes_per_point)

    sums = np.zeros(len(regions), dtype=np.float64)
    counts = np.zeros(len(regions), dtype=np.int64)
    build_seconds = time.perf_counter() - start
    probe_seconds = 0.0

    for tile_x, tile_y, tile_w, tile_h in tiles:
        build_start = time.perf_counter()
        gpu.record_pass()
        tile_box = BoundingBox(
            extent.min_x + tile_x * cell_side,
            extent.min_y + tile_y * cell_side,
            extent.min_x + (tile_x + tile_w) * cell_side,
            extent.min_y + (tile_y + tile_h) * cell_side,
        )
        grid = UniformGrid(tile_box, tile_w, tile_h)

        # Blend all points of this tile into count and value planes (the
        # canvas build phase of the tile).  The tile mask is what keeps the
        # canvas path safe from the clamped-code false positive:
        # rasterize_points clamps out-of-extent points onto border pixels by
        # default, but only points strictly inside this tile reach it.
        in_tile = tile_box.contains_points(filtered.xs, filtered.ys)
        if not in_tile.any():
            build_seconds += time.perf_counter() - build_start
            continue
        xs = filtered.xs[in_tile]
        ys = filtered.ys[in_tile]
        vals = values[in_tile]
        count_plane = rasterize_points(xs, ys, grid)
        value_plane = rasterize_points(xs, ys, grid, weights=vals)
        gpu.record_draw(primitives=int(in_tile.sum()), pixels=int(np.count_nonzero(count_plane)))
        build_seconds += time.perf_counter() - build_start
        probe_start = time.perf_counter()

        # Mask each polygon's rasterization against the point planes and reduce.
        # The polygon is rasterized only on the window of tile cells its
        # bounding box overlaps; the window is aligned to the tile grid so the
        # masks line up with the point planes exactly.
        for polygon_id, region in enumerate(regions):
            overlap = region.bounds().intersection(tile_box)
            if overlap is None:
                continue
            ix0, iy0, ix1, iy1 = grid.cells_overlapping(overlap)
            window_box = BoundingBox(
                tile_box.min_x + ix0 * grid.cell_width,
                tile_box.min_y + iy0 * grid.cell_height,
                tile_box.min_x + (ix1 + 1) * grid.cell_width,
                tile_box.min_y + (iy1 + 1) * grid.cell_height,
            )
            window_grid = UniformGrid(window_box, ix1 - ix0 + 1, iy1 - iy0 + 1)
            _, coverage = rasterize_polygon(region, window_grid)
            # GPU sample-at-centre rule (non-conservative coverage).
            covered_pixels = int(np.count_nonzero(coverage))
            gpu.record_draw(primitives=_num_vertices(region), pixels=covered_pixels)
            if covered_pixels == 0:
                continue
            count_window = count_plane[iy0 : iy1 + 1, ix0 : ix1 + 1]
            value_window = value_plane[iy0 : iy1 + 1, ix0 : ix1 + 1]
            counts[polygon_id] += int(count_window[coverage].sum())
            sums[polygon_id] += float(value_window[coverage].sum())
        probe_seconds += time.perf_counter() - probe_start

    wall_seconds = time.perf_counter() - start
    device_seconds = gpu.stats.device_time - device_start

    return BRJResult(
        aggregates=query.finalize(sums, counts),
        counts=counts,
        epsilon=epsilon,
        resolution=(full_nx, full_ny),
        num_passes=len(tiles),
        wall_seconds=wall_seconds,
        device_seconds=device_seconds,
        build_seconds=build_seconds,
        probe_seconds=probe_seconds,
        extra={"cell_side": cell_side, "num_points": len(filtered)},
    )


def _union_extent(points: PointSet, regions: list[Region]) -> BoundingBox:
    box = None
    if len(points):
        min_x, min_y, max_x, max_y = points.bounds()
        box = BoundingBox(min_x, min_y, max_x, max_y)
    for region in regions:
        box = region.bounds() if box is None else box.union(region.bounds())
    if box is None:
        raise QueryError("cannot derive an extent from empty inputs")
    # Tiny margin so border points stay strictly inside the canvas.
    return box.expanded(1e-9 * max(1.0, box.width, box.height))


def _num_vertices(region: Region) -> int:
    return region.num_vertices
