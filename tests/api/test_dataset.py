"""SpatialDataset behaviour: suites, config plumbing, explain, registry reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EngineConfig, IndexRegistry, SpatialDataset
from repro.errors import QueryError
from repro.query import AggregationQuery
from repro.query.engine import PythonLoopEngine, VectorizedEngine


class TestConstruction:
    def test_static_source_requires_frame(self, taxi_points):
        with pytest.raises(QueryError):
            SpatialDataset(taxi_points)

    def test_store_brings_its_own_frame(self, workload, taxi_points):
        from repro.store import SpatialStore

        store = SpatialStore(workload.frame(), 8, attributes=taxi_points.attribute_names)
        dataset = SpatialDataset(store)
        assert dataset.frame is store.frame
        assert dataset.registry is store.registry

    def test_store_frame_conflict_rejected(self, workload, taxi_points):
        from repro.store import SpatialStore

        store = SpatialStore(workload.frame(), 8, attributes=taxi_points.attribute_names)
        with pytest.raises(QueryError):
            SpatialDataset(store, frame=workload.frame())

    def test_explicit_registry_shared_with_store(self, workload, taxi_points):
        from repro.store import SpatialStore

        registry = IndexRegistry()
        store = SpatialStore(workload.frame(), 8, attributes=taxi_points.attribute_names)
        dataset = SpatialDataset(store, registry=registry)
        assert dataset.registry is registry
        assert store.registry is registry


class TestSuites:
    def test_unknown_suite_rejected(self, dataset):
        with pytest.raises(QueryError):
            dataset.query(AggregationQuery(epsilon=8.0), suite="bogus")

    def test_single_suite_is_implicit(self, dataset):
        outcome = dataset.query(AggregationQuery(epsilon=8.0))
        assert outcome.suite == "neighborhoods"

    def test_spec_names_the_suite(self, dataset, census):
        dataset.add_suite("census", census)
        outcome = dataset.query(AggregationQuery(epsilon=8.0, suite="census"))
        assert outcome.suite == "census"
        assert outcome.counts.shape == (len(census),)

    def test_ambiguous_suite_rejected(self, dataset, census):
        dataset.add_suite("census", census)
        with pytest.raises(QueryError):
            dataset.query(AggregationQuery(epsilon=8.0))

    def test_suite_names(self, dataset, census):
        dataset.add_suite("census", census)
        assert dataset.suite_names == ("neighborhoods", "census")

    def test_replacing_suite_with_same_geometry_keeps_cache(self, dataset, neighborhoods):
        dataset.query(AggregationQuery(epsilon=8.0), strategy="act")
        dataset.add_suite("neighborhoods", list(neighborhoods))
        assert len(dataset.registry) == 1  # fingerprint unchanged → entry kept

    def test_replacing_suite_with_new_geometry_invalidates(self, dataset, census):
        dataset.query(AggregationQuery(epsilon=8.0), strategy="act")
        assert len(dataset.registry) == 1
        dataset.add_suite("neighborhoods", census)
        assert len(dataset.registry) == 0


class TestConfigPlumbing:
    """EngineConfig defaults and per-query overrides reach the kernels."""

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_default_engine_reaches_probe(self, workload, taxi_points, neighborhoods, engine, monkeypatch):
        calls = []
        for cls, label in ((PythonLoopEngine, "python"), (VectorizedEngine, "vectorized")):
            original = cls.probe_act

            def wrapper(self, *a, _original=original, _label=label, **k):
                calls.append(_label)
                return _original(self, *a, **k)

            monkeypatch.setattr(cls, "probe_act", wrapper)
        dataset = SpatialDataset(
            taxi_points,
            frame=workload.frame(),
            extent=workload.extent,
            suites={"n": neighborhoods},
            config=EngineConfig(engine=engine),
        )
        dataset.query(AggregationQuery(epsilon=8.0), strategy="act")
        assert set(calls) == {engine}

    def test_per_query_override_beats_default(self, dataset, monkeypatch):
        calls = []
        original = PythonLoopEngine.probe_act

        def wrapper(self, *a, **k):
            calls.append("python")
            return original(self, *a, **k)

        monkeypatch.setattr(PythonLoopEngine, "probe_act", wrapper)
        dataset.query(AggregationQuery(epsilon=8.0), strategy="act", engine="python")
        assert calls == ["python"]

    def test_engine_config_merged(self):
        config = EngineConfig(engine="python", build_engine="suite")
        merged = config.merged(engine="vectorized")
        assert merged.engine == "vectorized"
        assert merged.build_engine == "suite"
        assert config.engine == "python"  # original untouched
        assert config.merged() is config

    def test_build_engine_reaches_registry(self, dataset):
        dataset.query(AggregationQuery(epsilon=8.0), strategy="act", build_engine="python")
        dataset.query(AggregationQuery(epsilon=8.0), strategy="act", build_engine="suite")
        # Different builders key different cache entries.
        assert dataset.registry.stats.misses == 2


class TestRegistryReuse:
    def test_repeated_queries_hit_the_cache(self, dataset):
        first = dataset.query(AggregationQuery(epsilon=8.0), strategy="act")
        second = dataset.query(AggregationQuery(epsilon=8.0), strategy="act")
        assert (first.registry_hits, first.registry_misses) == (0, 1)
        assert (second.registry_hits, second.registry_misses) == (1, 0)
        assert first.registry_build_seconds > 0
        assert second.registry_build_seconds == 0
        assert np.array_equal(first.counts, second.counts)

    def test_shape_index_queries_share_covering(self, dataset):
        dataset.query(AggregationQuery(), strategy="shape-index")
        second = dataset.query(AggregationQuery(), strategy="shape-index")
        assert second.registry_hits == 1
        assert second.registry_misses == 0

    def test_act_index_accessor_hits_query_cache(self, dataset):
        dataset.query(AggregationQuery(epsilon=8.0), strategy="act")
        dataset.act_index("neighborhoods", 8.0)
        stats = dataset.registry_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1


class TestExplain:
    def test_explain_without_execution(self, dataset):
        rendered = dataset.explain(AggregationQuery(epsilon=8.0))
        assert "strategy" in rendered
        assert "costs:" in rendered
        assert dataset.registry.stats.misses == 0  # nothing built

    def test_result_explain_names_plan_and_suite(self, dataset):
        outcome = dataset.query(AggregationQuery(epsilon=8.0), strategy="act")
        rendered = outcome.explain()
        assert "'act'" in rendered
        assert "'neighborhoods'" in rendered
        assert "act_aggregate" in rendered

    def test_forcing_approximate_without_bound_fails(self, dataset):
        with pytest.raises(QueryError):
            dataset.query(AggregationQuery(), strategy="act")
