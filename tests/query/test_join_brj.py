"""Tests for the Bounded Raster Join and the GPU-baseline join (Figure 7 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.hardware import DeviceSpec, SimulatedGPU
from repro.query import (
    Aggregate,
    AggregationQuery,
    bounded_raster_join,
    exact_join_reference,
    gpu_baseline_join,
    median_relative_error,
)


@pytest.fixture(scope="module")
def reference(taxi_points, neighborhoods):
    return exact_join_reference(taxi_points, neighborhoods)


class TestBoundedRasterJoin:
    def test_invalid_epsilon(self, taxi_points, neighborhoods):
        with pytest.raises(QueryError):
            bounded_raster_join(taxi_points, neighborhoods, epsilon=0.0)

    def test_counts_close_to_exact(self, taxi_points, neighborhoods, workload, reference):
        result = bounded_raster_join(taxi_points, neighborhoods, epsilon=10.0, extent=workload.extent)
        assert median_relative_error(result.counts, reference.counts) < 0.02

    def test_accuracy_improves_with_tighter_bound(
        self, taxi_points, neighborhoods, workload, reference
    ):
        loose = bounded_raster_join(taxi_points, neighborhoods, epsilon=40.0, extent=workload.extent)
        tight = bounded_raster_join(taxi_points, neighborhoods, epsilon=5.0, extent=workload.extent)
        assert median_relative_error(tight.counts, reference.counts) <= median_relative_error(
            loose.counts, reference.counts
        )

    def test_resolution_grows_with_tighter_bound(self, taxi_points, neighborhoods, workload):
        loose = bounded_raster_join(taxi_points, neighborhoods, epsilon=40.0, extent=workload.extent)
        tight = bounded_raster_join(taxi_points, neighborhoods, epsilon=5.0, extent=workload.extent)
        assert tight.resolution[0] > loose.resolution[0]

    def test_canvas_subdivision_when_exceeding_device_limit(
        self, taxi_points, neighborhoods, workload
    ):
        small_device = SimulatedGPU(spec=DeviceSpec(max_texture_size=128))
        result = bounded_raster_join(
            taxi_points, neighborhoods, epsilon=10.0, extent=workload.extent, gpu=small_device
        )
        assert result.num_passes > 1
        # Subdivision must not change the result.
        single = bounded_raster_join(taxi_points, neighborhoods, epsilon=10.0, extent=workload.extent)
        np.testing.assert_array_equal(result.counts, single.counts)

    def test_device_time_recorded(self, taxi_points, neighborhoods, workload):
        gpu = SimulatedGPU()
        result = bounded_raster_join(
            taxi_points, neighborhoods, epsilon=10.0, extent=workload.extent, gpu=gpu
        )
        assert result.device_seconds > 0
        assert gpu.stats.pixels_written > 0

    def test_sum_aggregate(self, taxi_points, neighborhoods, workload):
        query = AggregationQuery(aggregate=Aggregate.SUM, attribute="fare")
        reference = exact_join_reference(taxi_points, neighborhoods, query=query)
        result = bounded_raster_join(
            taxi_points, neighborhoods, epsilon=5.0, extent=workload.extent, query=query
        )
        assert median_relative_error(result.aggregates, reference.aggregates) < 0.02

    def test_default_extent_derived_from_inputs(self, taxi_points, neighborhoods):
        result = bounded_raster_join(taxi_points, neighborhoods, epsilon=10.0)
        assert result.resolution[0] > 0


class TestGPUBaseline:
    def test_exact_counts(self, taxi_points, neighborhoods, workload, reference):
        result = gpu_baseline_join(
            taxi_points, neighborhoods, extent=workload.extent, grid_resolution=256
        )
        np.testing.assert_array_equal(result.counts, reference.counts)

    def test_pip_tests_counted(self, taxi_points, neighborhoods, workload):
        result = gpu_baseline_join(
            taxi_points, neighborhoods, extent=workload.extent, grid_resolution=256
        )
        assert result.pip_tests >= result.counts.sum()

    def test_brj_beats_baseline_on_device_time_at_loose_bound(
        self, taxi_points, neighborhoods, workload
    ):
        """The Figure 7 headline: at a 10 m bound BRJ is much cheaper than the
        exact baseline on the device cost model; at a very tight bound the
        advantage disappears."""
        gpu_a = SimulatedGPU()
        brj_loose = bounded_raster_join(
            taxi_points, neighborhoods, epsilon=10.0, extent=workload.extent, gpu=gpu_a
        )
        gpu_b = SimulatedGPU()
        baseline = gpu_baseline_join(
            taxi_points, neighborhoods, extent=workload.extent, grid_resolution=256, gpu=gpu_b
        )
        assert brj_loose.device_seconds < baseline.device_seconds

        gpu_c = SimulatedGPU(spec=DeviceSpec(max_texture_size=512))
        brj_tight = bounded_raster_join(
            taxi_points, neighborhoods, epsilon=0.5, extent=workload.extent, gpu=gpu_c
        )
        assert brj_tight.device_seconds > brj_loose.device_seconds
