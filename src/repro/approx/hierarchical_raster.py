"""Hierarchical Raster (HR) approximation.

The hierarchical raster (Figure 1(c)) keeps the distance guarantee of the
uniform raster but represents the *interior* of the region with large cells
and only refines cells that touch the boundary.  This is the representation
behind the Adaptive Cell Trie index (§3) and the main-memory join of §5.1.

Two construction modes are provided:

* :meth:`HierarchicalRasterApproximation.from_bound` — refine boundary cells
  until their diagonal is at most ``epsilon`` (the paper's distance bound).
* :meth:`HierarchicalRasterApproximation.from_cell_budget` — refine the
  coarsest boundary cells first until a cell budget is reached.  This is the
  "32 / 128 / 512 cells per polygon" precision knob used in Figure 4.

The builder prunes by boundary segments: a cell whose box intersects no
boundary segment is entirely inside or outside the region, decided by a
single point-in-polygon test of its centre, so the recursion only descends
along the boundary and the construction cost is proportional to the boundary
length measured in cells.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.approx.distance_bound import cell_side_for_bound
from repro.curves.cellid import CellId
from repro.curves.morton import MAX_LEVEL
from repro.errors import ApproximationError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.predicates import point_in_region
from repro.grid.uniform_grid import GridFrame

__all__ = ["HierarchicalRasterApproximation", "HRCell"]


@dataclass(frozen=True, slots=True)
class HRCell:
    """One cell of a hierarchical raster approximation."""

    cell: CellId
    is_boundary: bool


def _region_segments(region: Polygon | MultiPolygon) -> np.ndarray:
    """Boundary segments as an ``(m, 4)`` array of ``(x1, y1, x2, y2)``."""
    rows = []
    for seg in region.boundary_segments():
        rows.append((seg.start.x, seg.start.y, seg.end.x, seg.end.y))
    return np.asarray(rows, dtype=np.float64)


def _segment_bboxes(segments: np.ndarray) -> np.ndarray:
    """Per-segment bounding boxes as ``(m, 4)`` of ``(min_x, min_y, max_x, max_y)``."""
    return np.column_stack(
        [
            np.minimum(segments[:, 0], segments[:, 2]),
            np.minimum(segments[:, 1], segments[:, 3]),
            np.maximum(segments[:, 0], segments[:, 2]),
            np.maximum(segments[:, 1], segments[:, 3]),
        ]
    )


def _intersecting(
    segments: np.ndarray, seg_boxes: np.ndarray, idx: np.ndarray, box: BoundingBox
) -> np.ndarray:
    """Indices (subset of ``idx``) of segments that truly intersect ``box``.

    A cheap bounding-box rejection is followed by an exact slab
    (Liang–Barsky) clip test, so cells that merely fall inside the bounding
    box of a long diagonal edge are not treated as boundary cells — that
    would both blow up the cell count and violate the distance bound.
    """
    boxes = seg_boxes[idx]
    keep = ~(
        (boxes[:, 0] > box.max_x)
        | (boxes[:, 2] < box.min_x)
        | (boxes[:, 1] > box.max_y)
        | (boxes[:, 3] < box.min_y)
    )
    candidates = idx[keep]
    if candidates.size == 0:
        return candidates
    segs = segments[candidates]
    x1, y1, x2, y2 = segs[:, 0], segs[:, 1], segs[:, 2], segs[:, 3]
    dx = x2 - x1
    dy = y2 - y1
    with np.errstate(divide="ignore", invalid="ignore"):
        tx1 = np.where(dx != 0, (box.min_x - x1) / dx, np.where(x1 >= box.min_x, -np.inf, np.inf))
        tx2 = np.where(dx != 0, (box.max_x - x1) / dx, np.where(x1 <= box.max_x, np.inf, -np.inf))
        ty1 = np.where(dy != 0, (box.min_y - y1) / dy, np.where(y1 >= box.min_y, -np.inf, np.inf))
        ty2 = np.where(dy != 0, (box.max_y - y1) / dy, np.where(y1 <= box.max_y, np.inf, -np.inf))
    t_enter = np.maximum(np.minimum(tx1, tx2), np.minimum(ty1, ty2))
    t_exit = np.minimum(np.maximum(tx1, tx2), np.maximum(ty1, ty2))
    hit = (t_enter <= t_exit) & (t_exit >= 0.0) & (t_enter <= 1.0)
    return candidates[hit]


def _start_cell(frame: GridFrame, region_bounds: BoundingBox, max_level: int) -> CellId:
    """Smallest frame cell that contains the whole region bounding box."""
    low = frame.point_to_cell(region_bounds.min_x, region_bounds.min_y, max_level)
    high = frame.point_to_cell(region_bounds.max_x, region_bounds.max_y, max_level)
    level = max_level
    a, b = low, high
    while a.code != b.code and level > 0:
        a = a.parent()
        b = b.parent()
        level -= 1
    return a


class HierarchicalRasterApproximation(GeometricApproximation):
    """Variable-cell-size raster approximation of a region."""

    distance_bounded = True

    __slots__ = (
        "region",
        "frame",
        "max_level",
        "conservative",
        "cells",
        "_cell_lookup",
        "_min_level",
        "_level_codes",
    )

    def __init__(
        self,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        cells: list[HRCell],
        max_level: int,
        conservative: bool,
    ) -> None:
        self.region = region
        self.frame = frame
        self.max_level = max_level
        self.conservative = conservative
        self.cells = cells
        self._cell_lookup = {(c.cell.level, c.cell.code) for c in cells}
        self._min_level = min((c.cell.level for c in cells), default=0)
        self._level_codes: list[tuple[int, np.ndarray]] | None = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_bound(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
    ) -> "HierarchicalRasterApproximation":
        """Build an HR approximation satisfying the Hausdorff bound ``epsilon``.

        The construction rasterizes the region at the finest level implied by
        the bound (scanline fill plus boundary-cell marking) and then compacts
        full 2x2 blocks of interior cells bottom-up into coarser cells — the
        array-based equivalent of the recursive quadtree refinement, chosen
        because it is orders of magnitude faster in pure Python.
        """
        max_level = frame.level_for_cell_side(cell_side_for_bound(epsilon))
        return cls._build_rasterized(region, frame, max_level=max_level, conservative=conservative)

    @classmethod
    def _build_rasterized(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        max_level: int,
        conservative: bool,
    ) -> "HierarchicalRasterApproximation":
        from repro.grid.rasterizer import rasterize_polygon
        from repro.grid.uniform_grid import UniformGrid
        from repro.curves.morton import morton_encode_array

        side = frame.cell_side(max_level)
        bounds = region.bounds()
        ix0, iy0 = frame.point_to_xy(bounds.min_x, bounds.min_y, max_level)
        ix1, iy1 = frame.point_to_xy(bounds.max_x, bounds.max_y, max_level)
        window = UniformGrid(
            BoundingBox(
                frame.origin_x + ix0 * side,
                frame.origin_y + iy0 * side,
                frame.origin_x + (ix1 + 1) * side,
                frame.origin_y + (iy1 + 1) * side,
            ),
            ix1 - ix0 + 1,
            iy1 - iy0 + 1,
        )
        raster, center_inside = rasterize_polygon(region, window)
        boundary_mask = raster.boundary
        if not conservative:
            boundary_mask = boundary_mask & center_inside
        interior_mask = center_inside & ~raster.boundary

        cells: list[HRCell] = []
        ys, xs = np.nonzero(boundary_mask)
        if xs.size:
            codes = morton_encode_array(xs + ix0, ys + iy0, max_level)
            cells.extend(HRCell(CellId(int(code), max_level), True) for code in codes)

        # Bottom-up compaction of interior cells: a parent replaces its four
        # children whenever all four are interior.
        ys, xs = np.nonzero(interior_mask)
        level = max_level
        codes = (
            morton_encode_array(xs + ix0, ys + iy0, max_level)
            if xs.size
            else np.empty(0, dtype=np.uint64)
        )
        while level > 0 and codes.size:
            parents = codes >> np.uint64(2)
            unique_parents, counts = np.unique(parents, return_counts=True)
            full = unique_parents[counts == 4]
            has_full_parent = np.isin(parents, full)
            keep = codes[~has_full_parent]
            cells.extend(HRCell(CellId(int(code), level), False) for code in keep)
            codes = full
            level -= 1
        cells.extend(HRCell(CellId(int(code), level), False) for code in codes)

        return cls(region, frame, cells, max_level=max_level, conservative=conservative)

    @classmethod
    def from_cell_budget(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        max_cells: int,
        conservative: bool = True,
        max_level: int = MAX_LEVEL,
    ) -> "HierarchicalRasterApproximation":
        """Build an HR approximation using at most ``max_cells`` cells."""
        if max_cells < 1:
            raise ApproximationError("cell budget must be at least 1")
        return cls._build(region, frame, max_level=max_level, max_cells=max_cells, conservative=conservative)

    @classmethod
    def _build(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        max_level: int,
        max_cells: int | None,
        conservative: bool,
    ) -> "HierarchicalRasterApproximation":
        segments = _region_segments(region)
        seg_boxes = _segment_bboxes(segments)
        all_idx = np.arange(segments.shape[0])
        start = _start_cell(frame, region.bounds(), min(max_level, MAX_LEVEL))

        cells: list[HRCell] = []

        def classify(cell: CellId, idx: np.ndarray) -> tuple[str, np.ndarray]:
            """Return ('inside'|'outside'|'boundary', surviving segment indices)."""
            box = frame.cell_box(cell)
            surviving = _intersecting(segments, seg_boxes, idx, box)
            if surviving.size == 0:
                cx, cy = frame.cell_center(cell)
                if point_in_region(cx, cy, region):
                    return "inside", surviving
                return "outside", surviving
            return "boundary", surviving

        def emit_leaf(cell: CellId, idx: np.ndarray) -> None:
            """Handle a boundary cell that cannot be refined further."""
            if conservative:
                cells.append(HRCell(cell, True))
            else:
                cx, cy = frame.cell_center(cell)
                if point_in_region(cx, cy, region):
                    cells.append(HRCell(cell, True))

        if max_cells is None:
            # Depth-first refinement down to max_level.
            stack: list[tuple[CellId, np.ndarray]] = [(start, all_idx)]
            while stack:
                cell, idx = stack.pop()
                kind, surviving = classify(cell, idx)
                if kind == "inside":
                    cells.append(HRCell(cell, False))
                elif kind == "outside":
                    continue
                elif cell.level >= max_level:
                    emit_leaf(cell, surviving)
                else:
                    for child in cell.children():
                        stack.append((child, surviving))
        else:
            # Best-first refinement: always split the coarsest boundary cell,
            # stopping when the budget would be exceeded.
            counter = 0
            heap: list[tuple[int, int, CellId, np.ndarray]] = []
            kind, surviving = classify(start, all_idx)
            if kind == "inside":
                cells.append(HRCell(start, False))
            elif kind == "boundary":
                heapq.heappush(heap, (start.level, counter, start, surviving))
                counter += 1
            total = len(cells) + len(heap)
            while heap:
                level, _, cell, idx = heap[0]
                can_split = level < max_level and (total + 3) <= max_cells
                if not can_split:
                    break
                heapq.heappop(heap)
                total -= 1
                for child in cell.children():
                    child_kind, child_idx = classify(child, idx)
                    if child_kind == "inside":
                        cells.append(HRCell(child, False))
                        total += 1
                    elif child_kind == "boundary":
                        heapq.heappush(heap, (child.level, counter, child, child_idx))
                        counter += 1
                        total += 1
            # Whatever is left in the heap becomes boundary leaf cells.
            while heap:
                _, _, cell, idx = heapq.heappop(heap)
                emit_leaf(cell, idx)
            effective_max = max((c.cell.level for c in cells), default=0)
            max_level = effective_max

        return cls(region, frame, cells, max_level=max_level, conservative=conservative)

    # ------------------------------------------------------------------ #
    # approximation protocol
    # ------------------------------------------------------------------ #
    def covers_point(self, x: float, y: float) -> bool:
        finest = self.frame.point_to_cell(x, y, self.max_level)
        # Check the cell and all ancestors down to the coarsest stored level.
        cell = finest
        while True:
            if (cell.level, cell.code) in self._cell_lookup:
                return True
            if cell.level <= self._min_level or cell.level == 0:
                return False
            cell = cell.parent()

    def _codes_by_level(self) -> list[tuple[int, np.ndarray]]:
        """Stored cell codes grouped by level as sorted arrays (cached).

        This is the batch-probe representation of one approximation: the same
        sorted-key layout :class:`~repro.index.flat_act.FlatACT` uses for a
        whole polygon suite, built lazily so construction stays cheap.
        """
        if self._level_codes is None:
            by_level: dict[int, list[int]] = {}
            for c in self.cells:
                by_level.setdefault(c.cell.level, []).append(c.cell.code)
            self._level_codes = [
                (level, np.sort(np.asarray(codes, dtype=np.uint64)))
                for level, codes in sorted(by_level.items())
            ]
        return self._level_codes

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        # Deferred import: repro.index imports this module at package-init
        # time, so a top-level import of repro.index.csr would be circular.
        from repro.index.csr import isin_sorted

        xs, ys = as_point_arrays(xs, ys)
        result = np.zeros(xs.size, dtype=bool)
        if xs.size == 0:
            return result
        codes = self.frame.points_to_codes(xs, ys, self.max_level)
        # Membership of the shifted codes per stored level, via binary search
        # over the cached sorted code arrays.
        for level, sorted_codes in self._codes_by_level():
            shifted = codes >> np.uint64(2 * (self.max_level - level))
            result |= isin_sorted(sorted_codes, shifted)
        return result

    def bounds(self) -> BoundingBox:
        return self.region.bounds()

    # ------------------------------------------------------------------ #
    # introspection and derived representations
    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_boundary_cells(self) -> int:
        return sum(1 for c in self.cells if c.is_boundary)

    @property
    def num_interior_cells(self) -> int:
        return sum(1 for c in self.cells if not c.is_boundary)

    def cell_ids(self) -> list[CellId]:
        """The cells of the approximation (mixed levels, Morton order not guaranteed)."""
        return [c.cell for c in self.cells]

    def query_ranges(self, level: int) -> list[tuple[int, int]]:
        """Sorted, disjoint Morton-code ranges ``[lo, hi)`` at ``level``.

        Point data linearized at ``level`` can be matched against the
        approximation by running one range lookup per entry — this is the
        query-cell decomposition used by the point-indexing experiments (§3).
        """
        ranges = [c.cell.range_at(level) for c in self.cells]
        ranges.sort()
        # Merge adjacent ranges to reduce the number of index probes.
        merged: list[tuple[int, int]] = []
        for lo, hi in ranges:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(hi, merged[-1][1]))
            else:
                merged.append((lo, hi))
        return merged

    def boundary_sample(self) -> np.ndarray:
        """Corner points of the boundary cells (for empirical Hausdorff checks)."""
        samples = []
        for c in self.cells:
            if not c.is_boundary:
                continue
            box = self.frame.cell_box(c.cell)
            samples.extend(
                [
                    (box.min_x, box.min_y),
                    (box.max_x, box.min_y),
                    (box.max_x, box.max_y),
                    (box.min_x, box.max_y),
                ]
            )
        return np.asarray(samples, dtype=np.float64)

    def covered_area(self) -> float:
        """Total area of the approximation's cells."""
        return float(sum(self.frame.cell_box(c.cell).area for c in self.cells))

    def memory_bytes(self) -> int:
        # One 64-bit linearized ID per cell, as in the paper's accounting (§5.1).
        return self.num_cells * 8

    @property
    def name(self) -> str:
        return "HierarchicalRaster"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HierarchicalRasterApproximation(cells={self.num_cells}, "
            f"boundary={self.num_boundary_cells}, max_level={self.max_level})"
        )
