"""Result-range estimation: approximate answers with certain intervals (§6).

A taxi service provider wants trip counts per borough.  Exact answers are
expensive (boroughs have hundreds of boundary vertices) and unnecessary — but
the analyst does want to know *how far off* the approximate answer can be.

For every borough this script computes, at several distance bounds:

* the approximate (conservative) count ``alpha``,
* the partial count ``beta`` over boundary cells, and
* the certain interval ``[alpha - beta, alpha]`` that is guaranteed to contain
  the exact answer, plus the tightened expected-value estimate.

It then verifies the guarantee against the exact counts and shows how the
interval narrows as the bound tightens — the accuracy/performance dial the
paper advocates exposing to the user.

Run with::

    python examples/result_range_estimation.py
"""

from __future__ import annotations

from repro import NYCWorkload
from repro.bench import print_table
from repro.query import estimate_count_range, exact_count


def main() -> None:
    workload = NYCWorkload(seed=5)
    points = workload.taxi_points(100_000)
    boroughs = workload.boroughs(count=6, mean_vertices=400)

    exact_counts = [exact_count(borough, points) for borough in boroughs]

    for epsilon in (40.0, 10.0, 2.5):
        rows = []
        for borough_id, (borough, exact) in enumerate(zip(boroughs, exact_counts)):
            estimate = estimate_count_range(points, borough, epsilon=epsilon)
            rows.append(
                [
                    borough_id,
                    exact,
                    f"{estimate.approximate:.0f}",
                    f"[{estimate.lower:.0f}, {estimate.upper:.0f}]",
                    f"{estimate.expected:.0f}",
                    "yes" if estimate.contains(exact) else "NO",
                ]
            )
        print_table(
            ["borough", "exact", "approx", "certain interval", "expected", "interval holds"],
            rows,
            title=f"Borough trip counts with a {epsilon} m distance bound",
        )
        print()


if __name__ == "__main__":
    main()
