"""Tests for Sutherland–Hodgman box clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import BoundingBox, Polygon
from repro.geometry.clipping import clip_polygon_to_box, clip_ring_to_box


class TestClipRing:
    def test_fully_inside_unchanged(self):
        ring = np.array([(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)])
        out = clip_ring_to_box(ring, BoundingBox(0.0, 0.0, 5.0, 5.0))
        assert out.shape[0] == 4
        assert np.allclose(sorted(map(tuple, out)), sorted(map(tuple, ring)))

    def test_fully_outside_empty(self):
        ring = np.array([(10.0, 10.0), (12.0, 10.0), (12.0, 12.0)])
        out = clip_ring_to_box(ring, BoundingBox(0.0, 0.0, 5.0, 5.0))
        assert out.shape[0] == 0

    def test_partial_overlap_clipped_to_box(self):
        ring = np.array([(-1.0, -1.0), (3.0, -1.0), (3.0, 3.0), (-1.0, 3.0)])
        box = BoundingBox(0.0, 0.0, 2.0, 2.0)
        out = clip_ring_to_box(ring, box)
        assert out.shape[0] >= 3
        assert (out[:, 0] >= -1e-9).all() and (out[:, 0] <= 2.0 + 1e-9).all()
        assert (out[:, 1] >= -1e-9).all() and (out[:, 1] <= 2.0 + 1e-9).all()


class TestClipPolygon:
    def test_clip_square_to_half(self):
        poly = Polygon([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)])
        clipped = clip_polygon_to_box(poly, BoundingBox(0.0, 0.0, 2.0, 4.0))
        assert clipped is not None
        assert clipped.area == pytest.approx(8.0)

    def test_clip_away_returns_none(self):
        poly = Polygon([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)])
        assert clip_polygon_to_box(poly, BoundingBox(5.0, 5.0, 6.0, 6.0)) is None

    def test_clip_preserves_area_when_contained(self, l_shape):
        clipped = clip_polygon_to_box(l_shape, BoundingBox(-10.0, -10.0, 10.0, 10.0))
        assert clipped is not None
        assert clipped.area == pytest.approx(l_shape.area)

    def test_hole_clipped_with_polygon(self, unit_square):
        # Clip to the left half: the hole (4..6) is partially kept.
        clipped = clip_polygon_to_box(unit_square, BoundingBox(0.0, 0.0, 5.0, 10.0))
        assert clipped is not None
        # Left half of the square is 50, minus half of the 2x2 hole (2.0).
        assert clipped.area == pytest.approx(48.0)

    def test_clipped_area_never_exceeds_original(self, l_shape):
        box = BoundingBox(1.0, 1.0, 4.0, 4.0)
        clipped = clip_polygon_to_box(l_shape, box)
        assert clipped is not None
        assert clipped.area <= l_shape.area + 1e-9
        assert clipped.area <= box.area + 1e-9
