"""Contextvar-based span tracer with Perfetto-compatible export.

The tracer records wall-clock spans into a nested tree.  Two entry points
cover the two kinds of callers in the codebase:

* :func:`span` — instrumentation for hot paths.  When no tracer is active
  it returns a shared null singleton: no ``Span`` is allocated and
  ``perf_counter`` is never called, so disabled tracing costs one global
  read per call site.  When a tracer is active it returns a recording span
  nested under the caller's current span.
* :func:`timed` — measurement that must always happen (the per-stage
  timers behind ``DatasetResult``, ``RequestTiming`` and the bench
  harness).  It always returns a real measuring span; when a tracer is
  active the span additionally lands in the trace tree, otherwise it is
  detached and only its ``seconds`` are read.

Span stacks live in a :class:`~contextvars.ContextVar`.  New threads start
with an empty context, so spans can never leak across client threads: each
thread (and each pool worker process) builds its own root.  Finished roots
are appended to the active tracer under a lock.

Export formats: a plain JSON dict tree (:meth:`Tracer.to_dict`) and the
Chrome trace-event format (:meth:`Tracer.chrome_trace`) loadable in
Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
import threading
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "active",
    "add_finished",
    "annotate",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "now",
    "render_tree",
    "span",
    "span_from_dict",
    "span_to_dict",
    "timed",
]

# The per-context span stack.  ``default=None`` (not a shared list!) so each
# new thread/context lazily creates its own stack on first use.
_STACK: ContextVar[list["Span"] | None] = ContextVar("repro_trace_stack", default=None)

# Module-level enabled flag: ``None`` means tracing is off and ``span()``
# short-circuits to the null singleton before any allocation.
_ACTIVE: "Tracer | None" = None


class Span:
    """One timed region; a context manager that nests into the trace tree."""

    __slots__ = ("name", "tags", "start", "end", "children", "tid")

    def __init__(self, name: str, tags: dict[str, Any] | None = None):
        self.name = name
        self.tags = tags if tags is not None else {}
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self.tid = 0

    @property
    def seconds(self) -> float:
        return max(self.end - self.start, 0.0)

    @property
    def self_seconds(self) -> float:
        """Duration not covered by child spans."""
        return max(self.seconds - sum(c.seconds for c in self.children), 0.0)

    def annotate(self, **tags: Any) -> None:
        self.tags.update(tags)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __enter__(self) -> "Span":
        if _ACTIVE is not None:
            stack = _STACK.get()
            if stack is None:
                stack = []
                _STACK.set(stack)
            stack.append(self)
        self.tid = threading.get_ident()
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = perf_counter()
        tracer = _ACTIVE
        if tracer is not None:
            stack = _STACK.get()
            # The identity check keeps mismatched enter/exit pairs (tracer
            # enabled mid-span) from corrupting another span's children.
            if stack and stack[-1] is self:
                stack.pop()
                if stack:
                    stack[-1].children.append(self)
                else:
                    tracer.add_root(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f}ms, {len(self.children)} children)"


class _NullSpan:
    """Shared do-nothing span returned by :func:`span` when tracing is off."""

    __slots__ = ()
    seconds = 0.0
    self_seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **tags: Any) -> None:
        pass


_NULL = _NullSpan()


def span(name: str, **tags: Any):
    """A recording span when a tracer is active, the null singleton otherwise."""
    if _ACTIVE is None:
        return _NULL
    return Span(name, tags)


def timed(name: str, **tags: Any) -> Span:
    """A span that always measures, tree-registered only when tracing is on."""
    return Span(name, tags)


def now() -> float:
    """The tracer's clock (``perf_counter``), for event timestamps."""
    return perf_counter()


def enabled() -> bool:
    return _ACTIVE is not None


def active() -> "Tracer | None":
    return _ACTIVE


def enable() -> "Tracer":
    """Install (and return) a fresh tracer as the active one."""
    global _ACTIVE
    _ACTIVE = Tracer()
    return _ACTIVE


def disable() -> "Tracer | None":
    """Deactivate tracing; returns the tracer that was active, if any."""
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    return tracer


def current_span() -> Span | None:
    stack = _STACK.get()
    return stack[-1] if stack else None


def annotate(**tags: Any) -> None:
    """Attach tags to the innermost open span, if one exists."""
    current = current_span()
    if current is not None:
        current.annotate(**tags)


def add_finished(finished: Span) -> None:
    """Attach an externally-timed finished span under the caller's current span.

    Used to graft spans whose lifetime did not nest lexically (e.g. a local
    wrapper for work dispatched to a pool worker).  No-op when tracing is off.
    """
    tracer = _ACTIVE
    if tracer is None:
        return
    parent = current_span()
    if parent is not None:
        parent.children.append(finished)
    else:
        tracer.add_root(finished)


def render_tree(span: Span, indent: int = 0) -> list[str]:
    """Indented text rendering of a span subtree (one line per span)."""
    pad = "  " * indent
    lines = [
        f"{pad}{span.name} {span.seconds * 1e3:.3f}ms"
        f" (self {span.self_seconds * 1e3:.3f}ms)"
    ]
    for child in span.children:
        lines.extend(render_tree(child, indent + 1))
    return lines


def span_to_dict(span: Span) -> dict[str, Any]:
    """Serialize a span subtree (for shipping out of pool workers)."""
    return {
        "name": span.name,
        "tags": dict(span.tags),
        "start": span.start,
        "end": span.end,
        "children": [span_to_dict(c) for c in span.children],
    }


def span_from_dict(payload: dict[str, Any], shift: float = 0.0) -> Span:
    """Rebuild a span subtree, shifting every timestamp by ``shift`` seconds.

    Pool workers run in separate processes whose ``perf_counter`` origin is
    unrelated to the parent's; the caller passes ``shift`` so the grafted
    subtree lands at the local time the remote work was dispatched.
    """
    restored = Span(str(payload["name"]), dict(payload.get("tags", {})))
    restored.start = float(payload["start"]) + shift
    restored.end = float(payload["end"]) + shift
    restored.children = [span_from_dict(c, shift) for c in payload.get("children", [])]
    return restored


class Tracer:
    """Collects finished root spans; thread-safe; export to JSON / Chrome."""

    def __init__(self):
        self._lock = threading.Lock()
        self.roots: list[Span] = []

    def add_root(self, span: Span) -> None:
        with self._lock:
            self.roots.append(span)

    def attach(
        self,
        payload: dict[str, Any],
        *,
        parent: Span | None = None,
        rebase_to: float | None = None,
    ) -> Span:
        """Graft a serialized span subtree into the tree.

        ``rebase_to`` aligns the remote root's start with a local timestamp
        (see :func:`span_from_dict`); without it the payload's own clock is
        kept, which is only meaningful for same-process payloads.
        """
        shift = 0.0 if rebase_to is None else rebase_to - float(payload["start"])
        grafted = span_from_dict(payload, shift)
        if parent is not None:
            parent.children.append(grafted)
        else:
            self.add_root(grafted)
        return grafted

    def walk(self) -> Iterator[Span]:
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            roots = list(self.roots)
        return {"roots": [span_to_dict(r) for r in roots]}

    def chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON (``ph: "X"`` complete events), for Perfetto."""
        with self._lock:
            roots = list(self.roots)
        if not roots:
            return {"traceEvents": []}
        origin = min(r.start for r in roots)
        pid = os.getpid()
        events = []
        for root in roots:
            for item in root.walk():
                events.append(
                    {
                        "name": item.name,
                        "cat": "repro",
                        "ph": "X",
                        "ts": (item.start - origin) * 1e6,
                        "dur": item.seconds * 1e6,
                        "pid": pid,
                        "tid": item.tid or 0,
                        "args": {k: _jsonable(v) for k, v in item.tags.items()},
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=str)

    def write_chrome(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, default=str)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
