"""Synthetic polygon workloads.

The paper evaluates on three NYC polygon data sets that differ mainly in how
many regions they contain and how complex each region boundary is:

=============== ======= ===========================
Data set        Regions Avg. vertices per polygon
=============== ======= ===========================
Boroughs        5       663
Neighborhoods   289     30.6
Census tracts   39,200  13.6
=============== ======= ===========================

The generators below reproduce those *shapes* at configurable scale:

* :func:`borough_like_suite` — a handful of large regions obtained by slicing
  the city extent with wavy vertical boundaries and then densifying the rings
  to the requested vertex count (few regions, very complex boundaries).
* :func:`tessellation_suite` — a jittered grid tessellation (census-like:
  many small, simple polygons that tile the extent without gaps).
* :func:`neighborhood_like_suite` — star-convex blobs of moderate vertex
  count placed on a jittered grid (medium count, medium complexity, possibly
  slightly overlapping like real neighborhood definitions).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.rng import make_rng
from repro.errors import WorkloadError
from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import Polygon

__all__ = [
    "noisy_convex_polygon",
    "tessellation_suite",
    "neighborhood_like_suite",
    "borough_like_suite",
    "densify_ring",
]


def densify_ring(coords: np.ndarray, target_vertices: int) -> np.ndarray:
    """Insert vertices along ring edges until roughly ``target_vertices`` remain.

    Extra vertices are spread proportionally to edge length, so long edges get
    more of them.  Densification does not change the region's shape — it only
    raises the cost of exact point-in-polygon tests, which is how the paper's
    Borough polygons differ from Census polygons.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.shape[0]
    if target_vertices <= n:
        return coords
    closed = np.vstack([coords, coords[:1]])
    seg_len = np.hypot(np.diff(closed[:, 0]), np.diff(closed[:, 1]))
    total = seg_len.sum()
    extra = target_vertices - n
    # Number of inserted vertices per edge, proportional to its length.
    per_edge = np.floor(extra * seg_len / max(total, 1e-12)).astype(int)
    # Distribute the remainder to the longest edges.
    remainder = extra - per_edge.sum()
    if remainder > 0:
        order = np.argsort(-seg_len)
        per_edge[order[:remainder]] += 1
    out = []
    for i in range(n):
        a = closed[i]
        b = closed[i + 1]
        out.append(a)
        k = per_edge[i]
        for j in range(1, k + 1):
            t = j / (k + 1)
            out.append(a + t * (b - a))
    return np.asarray(out, dtype=np.float64)


def noisy_convex_polygon(
    center_x: float,
    center_y: float,
    mean_radius: float,
    num_vertices: int,
    seed: int | np.random.Generator | None = 0,
    irregularity: float = 0.35,
) -> Polygon:
    """A star-convex polygon with noisy radii around a centre point."""
    if num_vertices < 3:
        raise WorkloadError("a polygon needs at least 3 vertices")
    if mean_radius <= 0:
        raise WorkloadError("mean_radius must be positive")
    rng = make_rng(seed)
    angles = np.sort(rng.uniform(0.0, 2.0 * math.pi, num_vertices))
    # Guard against duplicate angles producing degenerate edges.
    angles += np.linspace(0.0, 1e-6, num_vertices)
    radii = mean_radius * (1.0 + irregularity * rng.uniform(-1.0, 1.0, num_vertices))
    radii = np.clip(radii, 0.2 * mean_radius, 2.0 * mean_radius)
    xs = center_x + radii * np.cos(angles)
    ys = center_y + radii * np.sin(angles)
    return Polygon(np.column_stack([xs, ys]))


def tessellation_suite(
    extent: BoundingBox,
    rows: int,
    cols: int,
    mean_vertices: float = 13.6,
    seed: int | np.random.Generator | None = 0,
    jitter_fraction: float = 0.25,
) -> list[Polygon]:
    """A census-like tessellation: ``rows x cols`` jittered quadrilaterals.

    Grid corners are shared between adjacent cells and jittered once, so the
    resulting polygons tile the extent without gaps or overlaps (except for
    the jitter staying within its cell, which the ``jitter_fraction`` cap
    guarantees).  Each quadrilateral is then densified to ``mean_vertices``
    vertices on average.
    """
    if rows < 1 or cols < 1:
        raise WorkloadError("rows and cols must be at least 1")
    rng = make_rng(seed)
    xs = np.linspace(extent.min_x, extent.max_x, cols + 1)
    ys = np.linspace(extent.min_y, extent.max_y, rows + 1)
    cell_w = extent.width / cols
    cell_h = extent.height / rows
    corner_x, corner_y = np.meshgrid(xs, ys)
    jitter_x = rng.uniform(-jitter_fraction, jitter_fraction, corner_x.shape) * cell_w
    jitter_y = rng.uniform(-jitter_fraction, jitter_fraction, corner_y.shape) * cell_h
    # Keep the outer boundary straight so every polygon stays inside the extent.
    jitter_x[:, 0] = jitter_x[:, -1] = 0.0
    jitter_y[0, :] = jitter_y[-1, :] = 0.0
    corner_x = corner_x + jitter_x
    corner_y = corner_y + jitter_y

    polygons = []
    for r in range(rows):
        for c in range(cols):
            ring = np.array(
                [
                    (corner_x[r, c], corner_y[r, c]),
                    (corner_x[r, c + 1], corner_y[r, c + 1]),
                    (corner_x[r + 1, c + 1], corner_y[r + 1, c + 1]),
                    (corner_x[r + 1, c], corner_y[r + 1, c]),
                ]
            )
            target = max(4, int(round(rng.normal(mean_vertices, mean_vertices * 0.15))))
            polygons.append(Polygon(densify_ring(ring, target)))
    return polygons


def neighborhood_like_suite(
    extent: BoundingBox,
    count: int,
    mean_vertices: float = 30.6,
    seed: int | np.random.Generator | None = 0,
) -> list[Polygon]:
    """A neighborhood-like suite: ``count`` star-convex blobs of moderate complexity.

    The blobs are centred on a jittered grid covering the extent and sized so
    neighbouring blobs touch or overlap slightly, mimicking neighborhood
    boundaries that are fuzzier than census tracts.
    """
    if count < 1:
        raise WorkloadError("count must be at least 1")
    rng = make_rng(seed)
    cols = int(math.ceil(math.sqrt(count)))
    rows = int(math.ceil(count / cols))
    cell_w = extent.width / cols
    cell_h = extent.height / rows
    polygons = []
    for i in range(count):
        r, c = divmod(i, cols)
        cx = extent.min_x + (c + 0.5) * cell_w + rng.uniform(-0.15, 0.15) * cell_w
        cy = extent.min_y + (r + 0.5) * cell_h + rng.uniform(-0.15, 0.15) * cell_h
        radius = 0.55 * min(cell_w, cell_h)
        vertices = max(8, int(round(rng.normal(mean_vertices, mean_vertices * 0.2))))
        polygons.append(
            noisy_convex_polygon(cx, cy, radius, vertices, seed=rng, irregularity=0.3)
        )
    return polygons


def borough_like_suite(
    extent: BoundingBox,
    count: int = 5,
    mean_vertices: float = 663.0,
    seed: int | np.random.Generator | None = 0,
    rotation_degrees: float | None = None,
) -> list[Polygon]:
    """A borough-like suite: few large regions with very complex boundaries.

    A square larger than the extent is cut into ``count`` bands by wavy
    boundaries; the bands are rotated (by default ~30 degrees, mimicking the
    diagonal orientation of real city boroughs), clipped back to the extent
    and densified to ``mean_vertices`` vertices.  The rotation matters for the
    benchmarks: it makes the boroughs' MBRs loose — covering most of the city,
    like the MBR of Brooklyn or Queens does — which is what penalises
    MBR-based filtering on this suite.
    """
    if count < 1:
        raise WorkloadError("count must be at least 1")
    rng = make_rng(seed)
    if rotation_degrees is None:
        rotation_degrees = float(rng.uniform(25.0, 40.0))
    angle = math.radians(rotation_degrees)

    # Work frame: a square centred on the extent, large enough that its
    # rotation still covers the extent.
    center_x = (extent.min_x + extent.max_x) / 2.0
    center_y = (extent.min_y + extent.max_y) / 2.0
    half = 0.75 * math.hypot(extent.width, extent.height)
    work_min_x, work_max_x = center_x - half, center_x + half
    work_min_y, work_max_y = center_y - half, center_y + half

    # Wavy vertical boundaries of the work frame, one more than the band count.
    num_samples = 48
    ys = np.linspace(work_min_y, work_max_y, num_samples)
    work_width = work_max_x - work_min_x
    boundaries = []
    for b in range(count + 1):
        base_x = work_min_x + work_width * b / count
        if b in (0, count):
            xs = np.full(num_samples, work_min_x if b == 0 else work_max_x)
        else:
            amplitude = 0.25 * work_width / count
            phase = rng.uniform(0, 2 * math.pi)
            frequency = rng.uniform(1.5, 3.5)
            noise = rng.normal(0.0, amplitude * 0.15, num_samples)
            xs = base_x + amplitude * np.sin(
                frequency * 2 * math.pi * (ys - work_min_y) / (work_max_y - work_min_y) + phase
            ) + noise
            xs = np.clip(xs, work_min_x + 0.02 * work_width, work_max_x - 0.02 * work_width)
        boundaries.append(np.column_stack([xs, ys]))

    cos_a, sin_a = math.cos(angle), math.sin(angle)

    def rotate(ring: np.ndarray) -> np.ndarray:
        dx = ring[:, 0] - center_x
        dy = ring[:, 1] - center_y
        return np.column_stack(
            [center_x + cos_a * dx - sin_a * dy, center_y + sin_a * dx + cos_a * dy]
        )

    from repro.geometry.clipping import clip_ring_to_box

    polygons = []
    for b in range(count):
        left = boundaries[b]
        right = boundaries[b + 1]
        ring = np.vstack([left, right[::-1]])
        clipped = clip_ring_to_box(rotate(ring), extent)
        if clipped.shape[0] < 3:
            continue
        target = max(clipped.shape[0], int(round(rng.normal(mean_vertices, mean_vertices * 0.1))))
        polygons.append(Polygon(densify_ring(clipped, target)))
    if not polygons:
        raise WorkloadError("borough generation produced no polygons inside the extent")
    return polygons
