"""Shared-memory lifecycle: segments must never outlive their owners.

POSIX shm segments are not garbage collected — a process that packs one and
exits without unlinking leaks it in ``/dev/shm`` until reboot.  These tests
lock down the finalizer backstop: blocks unlink on garbage collection, pool
executors release everything they published when collected, and a process
that never calls ``close()``/``unlink()`` still leaves no segment behind at
interpreter exit.
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
from multiprocessing import shared_memory

import numpy as np

from repro.shard.exec import PoolExecutor
from repro.shard.shm import attach_arrays, pack_arrays


def _segment_exists(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


class TestShmBlockFinalizer:
    def test_explicit_unlink_releases_segment(self):
        block = pack_arrays({"xs": np.arange(8.0)})
        name = block.name
        assert _segment_exists(name)
        block.unlink()
        assert not _segment_exists(name)

    def test_unlink_idempotent(self):
        block = pack_arrays({"xs": np.arange(8.0)})
        block.unlink()
        block.unlink()  # second call is a no-op, not an error

    def test_garbage_collection_unlinks(self):
        block = pack_arrays({"xs": np.arange(8.0)})
        name = block.name
        del block
        gc.collect()
        assert not _segment_exists(name)

    def test_attachers_do_not_unlink_on_close(self):
        block = pack_arrays({"xs": np.arange(8.0)})
        attached = attach_arrays(block.manifest)
        attached.close()
        assert _segment_exists(block.name)
        block.unlink()


class TestPoolExecutorFinalizer:
    def test_close_idempotent(self):
        pool = PoolExecutor(2)
        pool.close()
        pool.close()

    def test_garbage_collection_releases_published_segments(self):
        # A private pool (not the get_executor singleton, which lives until
        # interpreter exit) with a block parked in its published cache, as
        # _publish would leave one.
        pool = PoolExecutor(2)
        block = pack_arrays({"xs": np.arange(8.0)})
        pool._published["tok0"] = block
        name = block.name
        del pool
        gc.collect()
        assert not _segment_exists(name)
        block.unlink()  # already gone; must stay a no-op

    def test_close_releases_published_segments(self):
        pool = PoolExecutor(2)
        block = pack_arrays({"xs": np.arange(8.0)})
        pool._published["tok0"] = block
        pool.close()
        assert not _segment_exists(block.name)
        assert not pool._published


class TestInterpreterExitLeak:
    def test_exit_without_close_leaves_no_segment(self, tmp_path):
        """A process that packs blocks and exits uncleanly must not leak shm.

        The child never calls unlink()/close(); the parent then checks that
        none of the segment names it printed still exist.
        """
        script = (
            "import numpy as np\n"
            "from repro.shard.shm import pack_arrays\n"
            "blocks = [pack_arrays({'xs': np.arange(64.0)}) for _ in range(3)]\n"
            "print('\\n'.join(b.name for b in blocks))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        names = [line.strip() for line in proc.stdout.splitlines() if line.strip()]
        assert len(names) == 3
        for name in names:
            assert not _segment_exists(name), f"leaked segment {name}"
        # The finalizer beat the resource tracker, so the child exits without
        # the tracker's "leaked shared_memory objects" warning.
        assert "leaked shared_memory" not in proc.stderr
