"""Updatable spatial store: LSM-style ingest over the batch query engines.

The write path layers a mutable :class:`~repro.store.memtable.MemTable` over
immutable sorted :class:`~repro.store.run.Run` segments with tombstone
deletes and size-tiered compaction; the read path
(:class:`~repro.store.snapshot.StoreSnapshot`) fans every query out across
the segments through the existing probe engines and merges with the fused
aggregation — bit-identical, on both engines, to a from-scratch rebuild over
the live point set.
"""

from repro.store.memtable import MemTable
from repro.store.run import Run, encode_points_at
from repro.store.snapshot import StoreSnapshot
from repro.store.store import SizeTieredCompaction, SpatialStore, StoreStats

__all__ = [
    "MemTable",
    "Run",
    "SizeTieredCompaction",
    "SpatialStore",
    "StoreSnapshot",
    "StoreStats",
    "encode_points_at",
]
