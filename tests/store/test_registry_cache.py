"""Store-side polygon-index caching: one build across N snapshot joins.

Closes the ROADMAP open item: ``StoreSnapshot.act_join`` used to rebuild the
polygon index per call unless a prebuilt ``trie=`` was threaded by hand.
Snapshots now fetch the index from the store's
:class:`~repro.api.IndexRegistry`, which flush and compaction invalidate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import IndexRegistry
from repro.approx.build_engine import PythonBuildEngine, VectorizedBuildEngine
from repro.store import SpatialStore


@pytest.fixture()
def store(frame, store_level, taxi_points):
    store = SpatialStore(
        frame,
        store_level,
        attributes=taxi_points.attribute_names,
        memtable_capacity=100_000,
        auto_compact=False,
    )
    store.insert(taxi_points)
    store.flush()
    return store


def _spy_load_act(monkeypatch):
    """Count every actual ACT index construction, whatever the builder."""
    calls: list[str] = []
    for cls in (PythonBuildEngine, VectorizedBuildEngine):
        original = cls.load_act

        def wrapper(self, *args, _original=original, **kwargs):
            calls.append(self.name)
            return _original(self, *args, **kwargs)

        monkeypatch.setattr(cls, "load_act", wrapper)
    return calls


class TestSnapshotIndexCache:
    def test_one_build_across_many_snapshot_joins(
        self, store, neighborhoods, monkeypatch
    ):
        """The acceptance bar: N joins over an unchanged store, exactly one build."""
        builds = _spy_load_act(monkeypatch)
        results = [
            store.snapshot().act_join(neighborhoods, epsilon=8.0) for _ in range(5)
        ]
        assert len(builds) == 1
        assert store.registry.stats.misses == 1
        assert store.registry.stats.hits == 4
        # Cache hits answer identically to the build that populated them.
        for result in results[1:]:
            assert np.array_equal(result.counts, results[0].counts)
            assert np.array_equal(result.aggregates, results[0].aggregates)
        assert results[0].extra["registry_hit"] is False
        assert results[1].extra["registry_hit"] is True

    def test_prebuilt_trie_bypasses_the_registry(self, store, neighborhoods, frame):
        from repro.index import FlatACT

        trie = FlatACT.build(neighborhoods, frame, epsilon=8.0)
        store.snapshot().act_join(neighborhoods, epsilon=8.0, trie=trie)
        assert store.registry.stats.misses == 0
        assert store.registry.stats.hits == 0

    def test_flush_keeps_suite_index(
        self, store, neighborhoods, taxi_points, monkeypatch
    ):
        """Scoped invalidation: a flush clears only point-dependent entries.

        The polygon-suite ACT index depends on the regions and the frame —
        never on the points — so ingest churn must keep serving it from
        cache (hit-counter regression: the post-flush join is a hit, not a
        rebuild).
        """
        builds = _spy_load_act(monkeypatch)
        store.snapshot().act_join(neighborhoods, epsilon=8.0)
        hits_before = store.registry.stats.hits
        store.insert(taxi_points.select(np.arange(50)))
        store.flush()
        result = store.snapshot().act_join(neighborhoods, epsilon=8.0)
        assert len(builds) == 1  # the suite index survived the flush
        assert store.registry.stats.hits == hits_before + 1
        assert store.registry.stats.invalidations >= 1  # the point scope was cleared
        assert result.extra["registry_hit"] is True

    def test_empty_flush_keeps_the_cache(self, store, neighborhoods, monkeypatch):
        builds = _spy_load_act(monkeypatch)
        store.snapshot().act_join(neighborhoods, epsilon=8.0)
        store.flush()  # memtable empty: state unchanged, cache kept
        store.snapshot().act_join(neighborhoods, epsilon=8.0)
        assert len(builds) == 1

    def test_compaction_keeps_suite_index(
        self, frame, store_level, taxi_points, neighborhoods, monkeypatch
    ):
        """Compaction reshuffles points, so it too spares polygon-suite entries."""
        store = SpatialStore(
            frame,
            store_level,
            attributes=taxi_points.attribute_names,
            memtable_capacity=100_000,
            auto_compact=False,
        )
        half = len(taxi_points) // 2
        store.insert(taxi_points.select(np.arange(half)))
        store.flush()
        store.insert(taxi_points.select(np.arange(half, len(taxi_points))))
        store.flush()
        builds = _spy_load_act(monkeypatch)
        before = store.snapshot().act_join(neighborhoods, epsilon=8.0)
        store.compact(full=True)
        after = store.snapshot().act_join(neighborhoods, epsilon=8.0)
        assert len(builds) == 1  # served from cache across the compaction
        assert np.array_equal(after.counts, before.counts)
        assert np.array_equal(after.aggregates, before.aggregates)

    def test_joins_with_registry_match_prebuilt_trie(self, store, neighborhoods, frame):
        """Caching never changes the answer (bit-identical to trie threading)."""
        from repro.index import FlatACT

        trie = FlatACT.build(neighborhoods, frame, epsilon=8.0)
        via_registry = store.snapshot().act_join(neighborhoods, epsilon=8.0)
        via_trie = store.snapshot().act_join(neighborhoods, epsilon=8.0, trie=trie)
        assert np.array_equal(via_registry.counts, via_trie.counts)
        assert np.array_equal(via_registry.aggregates, via_trie.aggregates)

    def test_registry_shared_with_dataset(self, store, neighborhoods):
        """Ad-hoc facade queries and snapshot joins share one cache."""
        from repro.api import SpatialDataset
        from repro.query import AggregationQuery

        dataset = SpatialDataset(store, suites={"n": neighborhoods})
        dataset.query(AggregationQuery(epsilon=8.0), strategy="act")  # miss: build
        store.snapshot().act_join(neighborhoods, epsilon=8.0)  # hit: same key
        assert store.registry.stats.misses == 1
        assert store.registry.stats.hits == 1

    def test_external_registry_attached(self, frame, store_level, taxi_points, neighborhoods):
        registry = IndexRegistry()
        store = SpatialStore(
            frame,
            store_level,
            attributes=taxi_points.attribute_names,
            registry=registry,
        )
        store.insert(taxi_points.select(np.arange(100)))
        store.snapshot().act_join(neighborhoods, epsilon=8.0)
        assert registry.stats.misses == 1
        assert store.registry is registry
