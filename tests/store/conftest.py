"""Shared fixtures for the updatable-store suite."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def frame(workload):
    return workload.frame()


@pytest.fixture(scope="session")
def store_level() -> int:
    """Linearization level of the store runs (shallow — the extent is 1 km)."""
    return 8
