"""Sharded scatter-gather execution: tiled frames, routed stores, exact merges.

The layer that takes every single-frame kernel in this reproduction
multi-core (and, structurally, multi-machine): a
:class:`~repro.shard.frame.ShardedFrame` tiles the global grid frame,
points are routed per tile (at ingest for
:class:`~repro.shard.store.ShardedStore`, at partition time for static
sets), each shard probes independently — serially or over a persistent
shared-memory process pool — and the partials merge **exactly**, so sharded
answers are bit-identical to the unsharded kernels.
"""

from repro.shard.exec import PoolExecutor, SerialExecutor, get_executor, shutdown_executors
from repro.shard.frame import ShardedFrame, ShardTile
from repro.shard.gather import (
    ShardSegment,
    sharded_act_join,
    sharded_count_ranges,
    sharded_estimate_count_range,
)
from repro.shard.partition import ShardPart, StaticShards, partition_points
from repro.shard.store import ShardedSnapshot, ShardedStore

__all__ = [
    "PoolExecutor",
    "SerialExecutor",
    "ShardPart",
    "ShardSegment",
    "ShardTile",
    "ShardedFrame",
    "ShardedSnapshot",
    "ShardedStore",
    "StaticShards",
    "get_executor",
    "partition_points",
    "sharded_act_join",
    "sharded_count_ranges",
    "sharded_estimate_count_range",
    "shutdown_executors",
]
