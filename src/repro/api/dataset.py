"""The :class:`SpatialDataset` facade — one session-style entry point.

The paper's pitch (§4) is that one declarative spatial aggregation query
should be *planned*; the library's kernels
(:func:`~repro.query.join_mm.act_approximate_join`,
:func:`~repro.query.join_brj.bounded_raster_join`, the exact joins, raster
counts and range estimation) are the alternatives the planner chooses among.
``SpatialDataset`` ties the pieces together:

* it owns the shared :class:`~repro.grid.uniform_grid.GridFrame`, a point
  source — a static :class:`~repro.geometry.point.PointSet` **or** a live
  :class:`~repro.store.store.SpatialStore` — and named polygon suites,
* a default :class:`~repro.api.config.EngineConfig` (probe engine + build
  engine + cost model), overridable per query,
* an :class:`~repro.api.registry.IndexRegistry` caching the polygon indexes
  every query needs, shared with the backing store's snapshots, and
* :meth:`query` = plan → execute → result: the optimizer's
  :class:`~repro.query.optimizer.PlanChoice` is executed through
  :func:`~repro.query.plan.run_plan`, dispatching to exactly the kernel the
  free-function call would run — **bit-identically**, on both probe engines.

Quick start::

    from repro import NYCWorkload
    from repro.api import SpatialDataset
    from repro.query import AggregationQuery

    workload = NYCWorkload()
    dataset = (
        SpatialDataset(workload.taxi_points(100_000), frame=workload.frame(),
                       extent=workload.extent)
        .add_suite("neighborhoods", workload.neighborhoods(count=64))
    )
    result = dataset.query(AggregationQuery(epsilon=4.0, suite="neighborhoods"))
    print(result.strategy, result.counts)
    print(result.explain())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.errors import QueryError
from repro.obs import trace
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import GridFrame
from repro.api.config import EngineConfig
from repro.api.fingerprint import (
    SuiteDelta,
    combine_fingerprints,
    diff_suites,
    entry_fingerprints,
    region_fingerprint,
    removal_delta,
)
from repro.api.registry import IndexRegistry, suite_fingerprint
from repro.query.optimizer import PlanChoice, choose_plan
from repro.query.plan import (
    PlanContext,
    explain as explain_plan,
    range_estimate_plan,
    raster_count_plan,
    run_plan,
    scatter_gather_plan,
)
from repro.query.spec import AggregationQuery
from repro.shard.partition import StaticShards
from repro.shard.store import ShardedStore
from repro.store.store import SpatialStore

__all__ = ["DatasetResult", "PolygonSuite", "SpatialDataset"]

Region = Polygon | MultiPolygon

#: Strategies the facade's planner lets compete by default, in tie-break
#: order.  The grid-filter device plan stays available via ``strategy=`` but
#: does not compete naturally (its cost model duplicates the R*-tree's).
DEFAULT_CANDIDATES = ("act", "raster", "shape-index", "rtree")

#: Aliases accepted by ``strategy=`` on top of the optimizer's names.
_STRATEGY_ALIASES = {"brj": "raster", "gpu-baseline": "exact"}


@dataclass(frozen=True, slots=True)
class PolygonSuite:
    """A named, fingerprinted polygon suite registered with a dataset.

    ``fingerprint`` is the order-sensitive combination of
    :attr:`entry_fingerprints` (one blake2b content hash per polygon), so a
    suite delta can be computed from the fingerprints alone — unchanged
    polygons are never rehashed, let alone rebuilt.
    """

    name: str
    regions: tuple[Region, ...]
    fingerprint: str
    #: Per-polygon content fingerprints, in suite order.
    entry_fingerprints: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.regions)


@dataclass(slots=True)
class DatasetResult:
    """One executed dataset query: the plan choice plus the kernel result.

    ``result`` is exactly the object the dispatched kernel returned
    (:class:`~repro.query.join_mm.JoinResult`,
    :class:`~repro.query.join_brj.BRJResult`, …); ``aggregates`` / ``counts``
    pass through to it, so downstream code reads one shape regardless of the
    strategy that ran.
    """

    choice: PlanChoice
    result: Any
    suite: str
    seconds: float
    #: Registry cache traffic caused by this query (hits, misses) and the
    #: seconds the registry spent building indexes on its behalf (0 on hits).
    registry_hits: int = 0
    registry_misses: int = 0
    registry_build_seconds: float = 0.0
    #: Per-stage wall seconds: ``plan``, ``registry_build``, ``execute``,
    #: plus ``shard_execute`` (a per-shard list) for scatter-gather plans.
    stage_seconds: dict = field(default_factory=dict)
    #: Registry traffic split by entry scope (suite vs points) plus patch
    #: counters, as deltas caused by this query.
    registry_scoped: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    #: Root :class:`repro.obs.trace.Span` of this query's subtree when a
    #: tracer was active, ``None`` otherwise.  The stage timings above are
    #: views over the same measurements.
    spans: Any = None

    @property
    def strategy(self) -> str:
        return self.choice.strategy

    @property
    def aggregates(self) -> np.ndarray:
        return self.result.aggregates

    @property
    def counts(self) -> np.ndarray:
        return self.result.counts

    def explain(self) -> str:
        """EXPLAIN-style rendering: choice summary, plan tree, stage timings."""
        costs = ", ".join(
            f"{name}={cost:,.0f}" for name, cost in sorted(self.choice.costs.items())
        )
        header = f"strategy {self.strategy!r} over suite {self.suite!r} (costs: {costs})"
        lines = [header, explain_plan(self.choice.plan, indent=1)]
        scalar_stages = ", ".join(
            f"{name}={value:.6f}s"
            for name, value in self.stage_seconds.items()
            if not isinstance(value, (list, tuple))
        )
        if scalar_stages:
            lines.append(f"  stages: {scalar_stages}")
        shard_execute = self.stage_seconds.get("shard_execute")
        if shard_execute:
            rendered = ", ".join(
                f"shard{i}={sec:.6f}s" for i, sec in enumerate(shard_execute)
            )
            lines.append(f"  shard execute: {rendered}")
        scoped = self.registry_scoped
        if scoped:
            lines.append(
                "  registry: suite hits={suite_hits} misses={suite_misses} "
                "invalidations={suite_invalidations} | point hits={point_hits} "
                "misses={point_misses} invalidations={point_invalidations} | "
                "patches={patches} patched_polygons={patched_polygons}".format(**scoped)
            )
        if self.spans is not None:
            lines.append("  spans:")
            lines.extend("    " + line for line in trace.render_tree(self.spans))
        return "\n".join(lines)


class SpatialDataset:
    """Session facade over one point source and its polygon suites.

    Parameters
    ----------
    source:
        The point side: a static :class:`PointSet` or a live
        :class:`SpatialStore`.  Store-backed datasets answer every query
        from a fresh snapshot, and the ACT join path fans out across the
        store's segments (bit-identical to a from-scratch rebuild).
    frame:
        Shared grid hierarchy.  Mandatory for a static source (the store
        brings its own).
    extent:
        Canvas / planning extent; defaults to the frame's box.
    suites:
        Optional ``{name: regions}`` mapping registered at construction.
    config:
        Default :class:`EngineConfig`; individual queries override fields.
    registry:
        Polygon-index cache.  Defaults to a fresh registry — or, for a
        store-backed dataset, the store's registry, so flush / compaction
        invalidation reaches queries made through the facade.
    level:
        Linearization level of the point-side code index backing
        :meth:`raster_count` on a static source.
    shards:
        Partition a **static** source into this many rectangular tiles and
        let the planner emit scatter-gather plans over them (exact merge,
        bit-identical results; see :mod:`repro.shard`).  A sharded store
        source brings its own shard count — passing a conflicting value is
        an error — and a plain :class:`SpatialStore` cannot be sharded
        after the fact (construct a :class:`~repro.shard.store.ShardedStore`
        instead).  The fan-out runs serially unless the config's
        ``workers`` field asks for a process pool.
    """

    def __init__(
        self,
        source: "PointSet | SpatialStore | ShardedStore",
        *,
        frame: GridFrame | None = None,
        extent: BoundingBox | None = None,
        suites: "dict[str, list[Region]] | None" = None,
        config: EngineConfig | None = None,
        registry: IndexRegistry | None = None,
        level: int = 12,
        shards: "int | None" = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.level = int(level)
        self._suites: dict[str, PolygonSuite] = {}
        self._linearized = None
        self._code_index = None
        self._static_shards: StaticShards | None = None
        if isinstance(source, (SpatialStore, ShardedStore)):
            self._store: "SpatialStore | ShardedStore | None" = source
            self._points: PointSet | None = None
            if frame is not None and frame is not source.frame:
                raise QueryError("a store-backed dataset uses the store's frame")
            self.frame = source.frame
            if registry is not None:
                source.attach_registry(registry)
            self.registry = source.registry
            if isinstance(source, ShardedStore):
                if shards is not None and int(shards) != source.num_shards:
                    raise QueryError(
                        f"shards={shards} conflicts with the sharded store's "
                        f"{source.num_shards} shards"
                    )
                self.shards: "int | None" = source.num_shards
            else:
                if shards is not None:
                    raise QueryError(
                        "a SpatialStore cannot be sharded after the fact; "
                        "construct a ShardedStore instead"
                    )
                self.shards = None
        else:
            self._store = None
            self._points = source
            if frame is None:
                raise QueryError("a static dataset needs an explicit grid frame")
            self.frame = frame
            self.registry = registry if registry is not None else IndexRegistry()
            if shards is not None and int(shards) < 1:
                raise QueryError("shards must be >= 1")
            self.shards = int(shards) if shards is not None else None
        self.extent = extent if extent is not None else self.frame.frame_box()
        for name, regions in (suites or {}).items():
            self.add_suite(name, regions)

    # ------------------------------------------------------------------ #
    # suites
    # ------------------------------------------------------------------ #
    def add_suite(self, name: str, regions: "list[Region]") -> "SpatialDataset":
        """Register (or replace) a named polygon suite; returns ``self``.

        Replacing a suite drops its cached indexes from the registry only if
        the geometry actually changed (the fingerprint is content-based).
        For delta-only rebuilds of an already-registered suite, use
        :meth:`apply_suite` / :meth:`replace_polygon` and friends instead —
        they patch the cached indexes rather than dropping them.
        """
        entry_fps = entry_fingerprints(regions)
        suite = PolygonSuite(
            str(name), tuple(regions), combine_fingerprints(entry_fps), entry_fps
        )
        previous = self._suites.get(suite.name)
        if previous is not None and previous.fingerprint != suite.fingerprint:
            self.registry.invalidate(previous.fingerprint)
        self._suites[suite.name] = suite
        return self

    # ------------------------------------------------------------------ #
    # live-suite mutations (delta-only index rebuilds)
    # ------------------------------------------------------------------ #
    def apply_suite(self, name: str, regions: "list[Region]") -> dict:
        """Diff a suite against new geometry and patch only what changed.

        Fingerprints every entry of ``regions``, compares position by
        position against the registered suite, and pushes the resulting
        delta through the registry: unchanged polygons are skipped entirely
        (a modify-to-identical is a no-op), changed ones get exactly their
        postings rebuilt inside every cached FlatACT.  Returns a summary
        dict (``noop``, ``replaced`` / ``added`` / ``removed`` counts,
        patched / dropped registry entries and fingerprints).
        """
        target = self.suite(name)
        new_entry_fps = entry_fingerprints(regions)
        delta = diff_suites(target.entry_fingerprints, new_entry_fps)
        return self._apply_delta(target, delta, tuple(regions), new_entry_fps)

    def add_polygons(self, name: str, regions: "list[Region]") -> dict:
        """Append polygons to a registered suite (delta-only index patch)."""
        target = self.suite(name)
        added_fps = entry_fingerprints(regions)
        new_entry_fps = target.entry_fingerprints + added_fps
        delta = SuiteDelta(
            old_fingerprint=target.fingerprint,
            new_fingerprint=combine_fingerprints(new_entry_fps),
            added=tuple(range(len(target.regions), len(new_entry_fps))),
            unchanged=len(target.regions),
        )
        return self._apply_delta(
            target, delta, target.regions + tuple(regions), new_entry_fps
        )

    def remove_polygons(self, name: str, positions) -> dict:
        """Remove polygons by position (survivors renumber downwards)."""
        target = self.suite(name)
        delta = removal_delta(target.entry_fingerprints, positions)
        dropped = set(delta.removed)
        new_regions = tuple(
            region for i, region in enumerate(target.regions) if i not in dropped
        )
        new_entry_fps = tuple(
            fp for i, fp in enumerate(target.entry_fingerprints) if i not in dropped
        )
        return self._apply_delta(target, delta, new_regions, new_entry_fps)

    def replace_polygon(self, name: str, position: int, region: Region) -> dict:
        """Swap one polygon's geometry in place (same position, same ids)."""
        target = self.suite(name)
        position = int(position)
        if not 0 <= position < len(target.regions):
            raise QueryError(
                f"replace position {position} out of range for suite "
                f"{name!r} of {len(target.regions)} polygons"
            )
        new_fp = region_fingerprint(region)
        new_entry_fps = list(target.entry_fingerprints)
        replaced = () if new_fp == new_entry_fps[position] else (position,)
        new_entry_fps[position] = new_fp
        new_entry_fps = tuple(new_entry_fps)
        delta = SuiteDelta(
            old_fingerprint=target.fingerprint,
            new_fingerprint=combine_fingerprints(new_entry_fps),
            replaced=replaced,
            unchanged=len(new_entry_fps) - len(replaced),
        )
        new_regions = list(target.regions)
        new_regions[position] = region
        return self._apply_delta(target, delta, tuple(new_regions), new_entry_fps)

    def _apply_delta(
        self,
        target: PolygonSuite,
        delta: SuiteDelta,
        new_regions: tuple,
        new_entry_fps: tuple,
    ) -> dict:
        """Push one suite delta through the registry and swap the suite in."""
        summary = {
            "suite": target.name,
            "noop": delta.is_noop,
            "old_fingerprint": delta.old_fingerprint,
            "new_fingerprint": delta.new_fingerprint,
            "replaced": len(delta.replaced),
            "added": len(delta.added),
            "removed": len(delta.removed),
            "unchanged": delta.unchanged,
            "patched_entries": 0,
            "dropped_entries": 0,
        }
        if delta.is_noop:
            return summary
        patch = self.registry.patch_suite(delta, list(new_regions))
        self._suites[target.name] = PolygonSuite(
            target.name, new_regions, delta.new_fingerprint, new_entry_fps
        )
        summary["patched_entries"] = patch["patched"]
        summary["dropped_entries"] = patch["dropped"]
        summary["patch_seconds"] = patch["seconds"]
        return summary

    @property
    def suite_names(self) -> tuple[str, ...]:
        return tuple(self._suites)

    def suite(self, name: str) -> PolygonSuite:
        try:
            return self._suites[name]
        except KeyError:
            known = ", ".join(self._suites) or "none registered"
            raise QueryError(f"unknown polygon suite {name!r} ({known})") from None

    def _resolve_suite(self, spec: AggregationQuery | None, suite: "str | None") -> PolygonSuite:
        name = suite or (spec.suite if spec is not None else None)
        if name is None:
            if len(self._suites) == 1:
                return next(iter(self._suites.values()))
            raise QueryError(
                "query names no polygon suite (pass suite=... or set AggregationQuery.suite)"
            )
        return self.suite(name)

    # ------------------------------------------------------------------ #
    # point side
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> "SpatialStore | None":
        """The backing store (``None`` for a static dataset)."""
        return self._store

    @property
    def num_points(self) -> int:
        """Live point count (store-backed datasets count through a snapshot)."""
        if self._store is not None:
            return self._store.num_live
        return len(self._points)

    def points(self) -> PointSet:
        """The current point set (materialised from a snapshot for stores)."""
        if self._store is not None:
            return self._store.snapshot().live_points()
        return self._points

    def _shard_state(self):
        """Sharded execution state for :class:`PlanContext` (``None`` unsharded).

        Static sources partition once, lazily (the point set is immutable);
        store sources take a fresh consistent snapshot per query.
        """
        if self.shards is None:
            return None
        if self._store is not None:
            return self._store.snapshot()
        if self._static_shards is None:
            self._static_shards = StaticShards.build(self._points, self.frame, self.shards)
        return self._static_shards

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(
        self,
        spec: AggregationQuery | None = None,
        *,
        suite: "str | None" = None,
        strategy: "str | None" = None,
        candidates: "tuple[str, ...] | None" = None,
        **overrides,
    ) -> PlanChoice:
        """The optimizer's choice for the query, without executing it.

        ``strategy`` forces one strategy (accepting the CLI aliases ``brj``
        and ``gpu-baseline``); ``candidates`` narrows the natural
        competition, which defaults to :data:`DEFAULT_CANDIDATES`.
        """
        spec = spec or AggregationQuery()
        target = self._resolve_suite(spec, suite)
        config = self.config.merged(**overrides)
        if strategy is not None:
            strategy = _STRATEGY_ALIASES.get(strategy, strategy)
            candidates = (strategy,)
        elif candidates is None:
            candidates = DEFAULT_CANDIDATES
        return choose_plan(
            self._points,
            list(target.regions),
            spec,
            extent=self.extent,
            device=config.resolved_device(),
            model=config.resolved_cost_model(),
            candidates=candidates,
            num_points=self.num_points,
            shards=self.shards,
            workers=config.workers,
        )

    def explain(
        self,
        spec: AggregationQuery | None = None,
        *,
        suite: "str | None" = None,
        strategy: "str | None" = None,
        **overrides,
    ) -> str:
        """EXPLAIN without executing: choice summary plus plan tree."""
        spec = spec or AggregationQuery()
        target = self._resolve_suite(spec, suite)
        choice = self.plan(spec, suite=target.name, strategy=strategy, **overrides)
        costs = ", ".join(f"{name}={cost:,.0f}" for name, cost in sorted(choice.costs.items()))
        header = f"strategy {choice.strategy!r} over suite {target.name!r} (costs: {costs})"
        return header + "\n" + explain_plan(choice.plan, indent=1)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def query(
        self,
        spec: AggregationQuery | None = None,
        *,
        suite: "str | None" = None,
        strategy: "str | None" = None,
        candidates: "tuple[str, ...] | None" = None,
        gpu=None,
        **overrides,
    ) -> DatasetResult:
        """Plan the aggregation query, execute the choice, return the result.

        The executed kernel, its engine configuration and any prebuilt index
        are exactly what a direct kernel call would use, so the aggregates
        (floats included) are bit-identical to calling the kernel by hand —
        the facade adds planning and index reuse, never a different answer.
        """
        spec = spec or AggregationQuery()
        target = self._resolve_suite(spec, suite)
        config = self.config.merged(**overrides)
        with trace.span("dataset.query", suite=target.name) as query_span:
            with trace.timed("query.plan") as plan_span:
                choice = self.plan(
                    spec,
                    suite=target.name,
                    strategy=strategy,
                    candidates=candidates,
                    **overrides,
                )
            plan_seconds = plan_span.seconds
            query_span.annotate(strategy=choice.strategy)
            stats = self.registry.stats
            hits0, misses0, build0 = stats.hits, stats.misses, stats.build_seconds
            scoped0 = stats.as_dict()

            with trace.timed("query.execute", strategy=choice.strategy) as execute_span:
                if self._store is not None and choice.strategy == "act":
                    # The store's fan-out join is bit-identical to one probe
                    # pass over the live point set and never materialises it.
                    # The index is fetched here (with the suite's precomputed
                    # fingerprint, so cache hits skip rehashing the geometry)
                    # and threaded through.
                    trie = self.registry.act_index(
                        list(target.regions),
                        self.frame,
                        epsilon=float(spec.epsilon),
                        build_engine=config.build_engine,
                        fingerprint=target.fingerprint,
                    )
                    join_kwargs = {}
                    if self.shards is not None:
                        # The sharded snapshot's scatter layer resolves the
                        # worker count to the serial executor or a pool.
                        join_kwargs["executor"] = config.workers
                    result = self._store.snapshot().act_join(
                        list(target.regions),
                        epsilon=float(spec.epsilon),
                        query=spec,
                        trie=trie,
                        engine=config.engine,
                        build_engine=config.build_engine,
                        **join_kwargs,
                    )
                else:
                    result = run_plan(
                        choice.plan,
                        self._context(spec, target, choice.strategy, config, gpu),
                    )
            seconds = execute_span.seconds

            stage_seconds = {
                "plan": plan_seconds,
                "registry_build": stats.build_seconds - build0,
                "execute": seconds,
            }
            extra = getattr(result, "extra", None)
            if extra and extra.get("shard_seconds"):
                stage_seconds["shard_execute"] = list(extra["shard_seconds"])

            return DatasetResult(
                choice=choice,
                result=result,
                suite=target.name,
                seconds=seconds,
                registry_hits=stats.hits - hits0,
                registry_misses=stats.misses - misses0,
                registry_build_seconds=stats.build_seconds - build0,
                stage_seconds=stage_seconds,
                registry_scoped={
                    key: stats.as_dict()[key] - scoped0[key]
                    for key in (
                        "suite_hits",
                        "suite_misses",
                        "suite_invalidations",
                        "point_hits",
                        "point_misses",
                        "point_invalidations",
                        "patches",
                        "patched_polygons",
                    )
                },
                spans=query_span if trace.enabled() else None,
            )

    def join(
        self,
        suite: "str | None" = None,
        *,
        strategy: "str | None" = None,
        epsilon: "float | None" = None,
        spec: AggregationQuery | None = None,
        **kwargs,
    ) -> DatasetResult:
        """Convenience wrapper: an aggregation join with an explicit strategy.

        ``epsilon`` overrides the spec's distance bound; ``strategy=None``
        lets the optimizer choose.
        """
        spec = spec or AggregationQuery()
        if epsilon is not None and spec.epsilon != epsilon:
            spec = replace(spec, epsilon=epsilon)
        return self.query(spec, suite=suite, strategy=strategy, **kwargs)

    def _context(
        self,
        spec: AggregationQuery,
        target: PolygonSuite,
        strategy: str,
        config: EngineConfig,
        gpu,
    ) -> PlanContext:
        """Execution context with the registry's prebuilt index plugged in."""
        regions = list(target.regions)
        trie = None
        shape_index = None
        if strategy == "act":
            trie = self.registry.act_index(
                regions,
                self.frame,
                epsilon=float(spec.epsilon),
                build_engine=config.build_engine,
                fingerprint=target.fingerprint,
            )
        elif strategy == "shape-index":
            shape_index = self.registry.shape_index(
                regions,
                self.frame,
                build_engine=config.build_engine,
                fingerprint=target.fingerprint,
            )
        return PlanContext(
            points=self.points(),
            regions=regions,
            query=spec,
            extent=self.extent,
            frame=self.frame,
            engine=config.engine,
            build_engine=config.build_engine,
            trie=trie,
            shape_index=shape_index,
            gpu=gpu,
            shards=self._shard_state(),
            executor=config.workers,
        )

    # ------------------------------------------------------------------ #
    # non-join query paths
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        suite: "str | None" = None,
        *,
        epsilon: float,
        spec: AggregationQuery | None = None,
    ) -> list:
        """Certain COUNT intervals per region (result-range estimation, §6).

        A ``spec`` with a ``point_filter`` estimates over the filtered
        points on either source (the store path materialises the live set
        first — the snapshot fan-out cannot filter per segment cheaply).
        """
        spec = spec or AggregationQuery()
        target = self._resolve_suite(spec, suite)
        if self._store is not None and spec.point_filter is None:
            snapshot = self._store.snapshot()
            return [
                snapshot.estimate_count_range(region, epsilon) for region in target.regions
            ]
        context = self._context(spec, target, "estimate", self.config, None)
        plan = range_estimate_plan(epsilon)
        if self.shards is not None and self._store is None:
            # Static sharded source: fan the coverage counts out per shard
            # (one shared approximation, integer partials — exact merge).
            plan = scatter_gather_plan(plan, self.shards, workers=self.config.workers)
        return run_plan(plan, context)

    def raster_count(
        self,
        suite: "str | None" = None,
        *,
        cells_per_polygon: int,
        conservative: bool = True,
        spec: AggregationQuery | None = None,
        **overrides,
    ) -> np.ndarray:
        """Approximate per-region counts via query cells over the code index.

        A ``spec`` with a ``point_filter`` counts only the filtered points;
        that path linearizes the filtered set per call instead of using the
        dataset's cached code index (and, for a store source, materialises
        the live points, since the per-run code arrays cannot be filtered).
        """
        spec = spec or AggregationQuery()
        target = self._resolve_suite(spec, suite)
        config = self.config.merged(**overrides)
        if self._store is not None and spec.point_filter is None:
            snapshot = self._store.snapshot()
            return np.array(
                [
                    snapshot.raster_count(
                        region,
                        cells_per_polygon,
                        conservative=conservative,
                        engine=config.engine,
                        build_engine=config.build_engine,
                    )
                    for region in target.regions
                ],
                dtype=np.int64,
            )
        context = self._context(spec, target, "raster-count", config, None)
        if self.shards is not None and self._store is None:
            # Static sharded source: no global code index — each shard keeps
            # its own sorted code array (built on the global frame at the
            # dataset's level) and the integer partials sum exactly.  The
            # empty linearization only carries the level to the fan-out.
            from repro.query.containment import LinearizedPoints

            context.linearized = LinearizedPoints(
                frame=self.frame, level=self.level, codes=np.empty(0, dtype=np.uint64)
            )
            plan = scatter_gather_plan(
                raster_count_plan(cells_per_polygon, conservative=conservative),
                self.shards,
                workers=config.workers,
            )
            return run_plan(plan, context)
        if spec.point_filter is None:
            context.linearized, context.code_index = self._point_index()
        else:
            # The cached index is built over the unfiltered point set; a
            # filtered query gets its own linearization (at the dataset's
            # level) over exactly the filtered points.
            from repro.index.sorted_array import SortedCodeArray
            from repro.query.containment import LinearizedPoints

            filtered = spec.filtered_points(context.points)
            context.linearized = LinearizedPoints.build(filtered, self.frame, self.level)
            context.code_index = SortedCodeArray(
                context.linearized.codes, assume_sorted=True
            )
        return run_plan(raster_count_plan(cells_per_polygon, conservative=conservative), context)

    def _point_index(self):
        """Cached (LinearizedPoints, SortedCodeArray) of a static source."""
        if self._linearized is None:
            from repro.index.sorted_array import SortedCodeArray
            from repro.query.containment import LinearizedPoints

            self._linearized = LinearizedPoints.build(self._points, self.frame, self.level)
            self._code_index = SortedCodeArray(self._linearized.codes, assume_sorted=True)
        return self._linearized, self._code_index

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve(self, **kwargs):
        """A started :class:`~repro.serve.server.QueryServer` over this dataset.

        Keyword arguments (``max_batch``, ``max_wait_ms``, ``workers``, …)
        pass through to the server.  Use as a context manager::

            with dataset.serve(max_batch=32) as server:
                response = server.submit_join(epsilon=4.0).result()
        """
        # Imported lazily: repro.serve imports this module for the facade
        # types, so a module-level import would be circular.
        from repro.serve.server import QueryServer

        return QueryServer(self, **kwargs).start()

    # ------------------------------------------------------------------ #
    # persistence (whole-session checkpoints)
    # ------------------------------------------------------------------ #
    def save(self, directory, *, sync: bool = True):
        """Checkpoint the whole session under ``directory``.

        Persists the point side (the store's durable checkpoint, or the
        static point set), every registered suite as fingerprint-verified
        WKT, and the engine configuration — everything :meth:`open` needs
        to bring an identical, restartable session back.  See
        :mod:`repro.durable.checkpoint` for the layout and crash-safety
        story.  Returns the session directory.
        """
        # Lazy: repro.durable.checkpoint imports this module.
        from repro.durable.checkpoint import save_session

        return save_session(self, directory, sync=sync)

    @classmethod
    def open(
        cls,
        directory,
        *,
        registry=None,
        config: EngineConfig | None = None,
        durable: "bool | None" = None,
        sync: bool = True,
    ) -> "SpatialDataset":
        """Restore a session checkpointed with :meth:`save`.

        Store-backed sessions replay their write-ahead logs here (the
        store's ``last_recovery`` reports what came back); suite geometry
        is verified against the stored content fingerprints.  ``config``
        overrides the persisted engine configuration wholesale.
        """
        from repro.durable.checkpoint import open_session

        return open_session(
            directory, registry=registry, config=config, durable=durable, sync=sync
        )

    # ------------------------------------------------------------------ #
    # index lifecycle
    # ------------------------------------------------------------------ #
    def act_index(self, suite: str, epsilon: float, **overrides):
        """The (cached) probe-ready ACT index of a suite at a distance bound."""
        target = self.suite(suite)
        config = self.config.merged(**overrides)
        return self.registry.act_index(
            list(target.regions),
            self.frame,
            epsilon=float(epsilon),
            build_engine=config.build_engine,
            fingerprint=target.fingerprint,
        )

    def registry_stats(self) -> dict:
        """The registry's lifetime hit / miss / invalidation counters."""
        return self.registry.stats.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        source = "store" if self._store is not None else "points"
        sharding = f", shards={self.shards}" if self.shards is not None else ""
        return (
            f"SpatialDataset(source={source}, points={self.num_points}, "
            f"suites={list(self._suites)}{sharding})"
        )
