"""The LSM-style updatable spatial store.

The paper's distance-bounded pipeline is build-once: linearize the points,
sort them, index the polygons, query forever.  :class:`SpatialStore` makes
the *point side* of that pipeline updatable without giving up any of the
batch query machinery:

* **Ingest** lands in a :class:`~repro.store.memtable.MemTable` — an O(1)
  append buffer.  Nothing is encoded or sorted on the hot path.
* **Flush** drains the buffer into an immutable
  :class:`~repro.store.run.Run`: points are linearized with
  :meth:`CellId.encode_points <repro.curves.cellid.CellId.encode_points>` and
  frozen in canonical ``(code, id)`` order, giving each run a sorted code
  array the existing code-index query paths consume unchanged.
* **Deletes** of buffered points simply drop out of the next flush; deletes
  of already-flushed points become **tombstones** (a sorted id array) that
  every query subtracts exactly and the next compaction purges physically.
* **Size-tiered compaction** merges runs of similar size into one
  consolidated run whose arrays are bit-identical to a from-scratch build
  over the surviving points — so query behaviour never depends on the
  ingest history.
* **Snapshots** (:meth:`SpatialStore.snapshot`) freeze the current state in
  O(memtable) time and keep serving consistent reads while ingest, flushes
  and compactions continue.

Every query path (range counts, raster counts, the ACT aggregation join,
result-range estimation) answers **exactly** what a store rebuilt from
scratch over the live point set would answer — bit for bit, float aggregates
included, on both probe engines.  The parity suite in
``tests/store/test_store_parity.py`` locks this down over scripted
interleavings of insert / delete / flush / compact.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.durable import faults
from repro.durable import wal as walog
from repro.errors import StoreError, WalError
from repro.geometry.point import PointSet
from repro.grid.uniform_grid import GridFrame
from repro.index.csr import isin_sorted
from repro.obs import trace
from repro.obs.log import get_logger
from repro.store.memtable import MemTable
from repro.store.run import Run
from repro.store.snapshot import StoreSnapshot

__all__ = ["SizeTieredCompaction", "SpatialStore", "StoreStats"]

_log = get_logger("store")


def _sorted_unique(ids: np.ndarray) -> np.ndarray:
    """Sort and deduplicate an id array (sort + neighbour comparison)."""
    if ids.shape[0] < 2:
        return ids
    ids = np.sort(ids)
    keep = np.empty(ids.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(ids[1:], ids[:-1], out=keep[1:])
    return ids[keep]


@dataclass(frozen=True, slots=True)
class SizeTieredCompaction:
    """Size-tiered compaction policy (the classic LSM default).

    Runs are bucketed into tiers by order of magnitude
    (``floor(log_base(size))``); whenever a tier accumulates ``min_runs``
    runs, they are merged into one consolidated run, which usually graduates
    into the next tier.  Each point is therefore rewritten only
    O(log_base(total / flush_size)) times over its lifetime — the amortised
    ingest win the streaming benchmark measures against rebuild-per-batch.
    """

    min_runs: int = 4
    tier_base: float = 4.0

    def __post_init__(self) -> None:
        if self.min_runs < 2:
            raise StoreError("compaction needs at least 2 runs per merge")
        if self.tier_base <= 1.0:
            raise StoreError("tier_base must be greater than 1")

    def tier_of(self, size: int) -> int:
        """Tier index of a run with ``size`` live-or-dead entries."""
        return int(math.floor(math.log(max(size, 1), self.tier_base)))

    def select(self, runs: "list[Run]") -> "list[int] | None":
        """Positions of the runs to merge next, or ``None`` when stable.

        The fullest eligible tier (smallest tier first, so cheap merges
        happen before expensive ones) is merged in its entirety.
        """
        return self.select_sizes([len(run) for run in runs])

    def select_sizes(self, sizes: "list[int]") -> "list[int] | None":
        """:meth:`select` over plain entry counts (the debt simulation)."""
        tiers: dict[int, list[int]] = {}
        for pos, size in enumerate(sizes):
            tiers.setdefault(self.tier_of(size), []).append(pos)
        for tier in sorted(tiers):
            if len(tiers[tier]) >= self.min_runs:
                return tiers[tier]
        return None


@dataclass(slots=True)
class StoreStats:
    """Lifetime counters of one store (reported by the streaming benchmark)."""

    inserts: int = 0
    deletes: int = 0
    flushes: int = 0
    flushed_entries: int = 0
    compactions: int = 0
    compacted_entries: int = 0
    purged_tombstones: int = 0
    #: Seconds spent freezing memtables into runs / merging runs.
    flush_seconds: float = 0.0
    compaction_seconds: float = 0.0
    #: Bytes of runs the compaction policy would still merge if run to
    #: completion — the gauge incremental compaction drains between flushes.
    compaction_debt_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "inserts": self.inserts,
            "deletes": self.deletes,
            "flushes": self.flushes,
            "flushed_entries": self.flushed_entries,
            "compactions": self.compactions,
            "compacted_entries": self.compacted_entries,
            "purged_tombstones": self.purged_tombstones,
            "flush_seconds": self.flush_seconds,
            "compaction_seconds": self.compaction_seconds,
            "compaction_debt_bytes": self.compaction_debt_bytes,
        }


class SpatialStore:
    """Updatable point store over a fixed grid frame and linearization level.

    Parameters
    ----------
    frame:
        The :class:`~repro.grid.uniform_grid.GridFrame` shared with the
        polygon approximations and indexes that will query the store.
    level:
        Linearization level of the run code arrays (the fine level of §3's
        point linearization).
    attributes:
        Names of the per-point attribute columns every insert batch must
        carry (e.g. ``("fare", "passengers")``).
    memtable_capacity:
        Buffered entries that trigger an automatic flush (and, when
        ``auto_compact`` is on, a compaction check) during :meth:`insert`.
    compaction:
        The :class:`SizeTieredCompaction` policy; pass a policy with
        different knobs to tune merge frequency.
    auto_compact:
        Run the compaction policy after every flush.  Turn off to drive
        :meth:`flush` / :meth:`compact` manually (the parity suite does).
    incremental_compaction:
        Bound the automatic post-flush compaction to **one** merge (the
        smallest eligible tier) instead of looping until the policy is
        stable.  Remaining work is tracked as the ``compaction_debt_bytes``
        gauge and drained one merge per flush — flattening the p99 flush
        latency a stop-the-world merge cascade would cause.  Query results
        never depend on run layout, so this changes latency only.
    compaction_budget_bytes:
        Alternative bound: each automatic pass merges tiers until the next
        merge would push the pass's *input* bytes past the budget (the
        first merge always runs, so debt drains even when one tier exceeds
        the budget on its own).
    registry:
        Optional :class:`~repro.api.registry.IndexRegistry` shared with the
        serving layer.  Snapshots use it to cache the polygon index their
        ACT joins probe (one build across any number of joins over an
        unchanged store); the store invalidates it on every flush and
        compaction.  Created lazily when not provided.
    """

    def __init__(
        self,
        frame: GridFrame,
        level: int,
        attributes: tuple[str, ...] = (),
        memtable_capacity: int = 8192,
        compaction: SizeTieredCompaction | None = None,
        auto_compact: bool = True,
        incremental_compaction: bool = False,
        compaction_budget_bytes: int | None = None,
        registry=None,
    ) -> None:
        if level < 0:
            raise StoreError("linearization level must be non-negative")
        if memtable_capacity < 1:
            raise StoreError("memtable capacity must be at least 1")
        if compaction_budget_bytes is not None and compaction_budget_bytes < 1:
            raise StoreError("compaction byte budget must be positive")
        self.frame = frame
        self.level = int(level)
        self.attributes = tuple(attributes)
        self.memtable_capacity = int(memtable_capacity)
        self.compaction = compaction or SizeTieredCompaction()
        self.auto_compact = auto_compact
        self.incremental_compaction = bool(incremental_compaction)
        self.compaction_budget_bytes = (
            None if compaction_budget_bytes is None else int(compaction_budget_bytes)
        )
        self.stats = StoreStats()
        #: Write-ahead log attached by :meth:`create` / :meth:`open`; when
        #: set, every mutation is logged and fsynced before it is acked.
        self._wal: walog.WriteAheadLog | None = None
        self._directory: Path | None = None
        #: :class:`~repro.durable.wal.RecoveryReport` of the last replay.
        self.last_recovery: walog.RecoveryReport | None = None
        self._memtable = MemTable(self.attributes, first_id=0)
        self._runs: list[Run] = []
        # Sorted tombstone ids pointing into runs.  Replaced wholesale on
        # every delete/compaction (never mutated), so snapshots can hold it
        # by reference.
        self._deleted_ids = np.empty(0, dtype=np.int64)
        self._next_id = 0
        self._registry = registry
        # Guards the mutable state (memtable, run list, tombstones, id
        # sequence) so a serving layer can snapshot from reader threads while
        # one writer ingests.  Reentrant: insert -> flush -> compact nest.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(
        cls,
        points: PointSet,
        frame: GridFrame,
        level: int,
        **kwargs,
    ) -> "SpatialStore":
        """Bulk-load a store from an existing point set (one insert + flush).

        The resulting single-run store is exactly what any ingest history
        with the same live point set compacts down to — the parity suite
        uses this as its from-scratch oracle.
        """
        store = cls(frame, level, attributes=points.attribute_names, **kwargs)
        store.insert(points)
        store.flush()
        return store

    @classmethod
    def create(
        cls,
        directory,
        frame: GridFrame,
        level: int,
        sync: bool = True,
        **kwargs,
    ) -> "SpatialStore":
        """A new **durable** store rooted at ``directory``.

        Writes an empty checkpoint and attaches a write-ahead log: from now
        on every mutation is appended to ``directory/wal`` and fsynced
        before it is acked (``sync=False`` keeps the log but skips the
        fsync — crash-unsafe fast mode for bulk loads), so
        :meth:`open` on the same directory reconstructs the exact live
        state — memtable included — after any crash.
        """
        directory = Path(directory)
        if (directory / "manifest.json").exists():
            raise StoreError(f"a store already exists in {directory}")
        store = cls(frame, level, **kwargs)
        store._directory = directory
        store.save(directory)
        store._wal = walog.WriteAheadLog.create(directory / "wal", epoch=0, sync=sync)
        return store

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def insert(self, points: PointSet, ids: np.ndarray | None = None) -> np.ndarray:
        """Append a point batch; returns the assigned insertion ids.

        Ids are assigned sequentially and never reused; they are the handle
        :meth:`delete` takes and the global order every query merges by.

        ``ids`` lets an external sequencer (a
        :class:`~repro.shard.store.ShardedStore` routing one global id space
        across member stores) assign them instead: they must be strictly
        increasing and start at or after the store's next id, so ids stay
        unique and ascending within the store even though the local sequence
        gains gaps.
        """
        with self._lock:
            n = len(points)
            if ids is None:
                ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
            else:
                ids = np.asarray(ids, dtype=np.int64)
                if ids.shape[0] != n:
                    raise StoreError("explicit ids must match the batch length")
                if n and (ids[0] < self._next_id or (np.diff(ids) <= 0).any()):
                    raise StoreError(
                        "explicit ids must be strictly increasing and start at or "
                        f"after the next insertion id {self._next_id}"
                    )
            try:
                values = {name: points.attribute(name) for name in self.attributes}
            except Exception as exc:
                raise StoreError(
                    f"insert batch lacks a store attribute: {exc}"
                ) from exc
            # Log after validation (a rejected batch must leave no record),
            # apply, then group-commit: one fsync at the end of the public
            # call covers this record plus any capacity-triggered flush
            # record it caused.
            if self._wal is not None:
                self._wal.append(
                    walog.INSERT,
                    walog.encode_insert(
                        ids, points.xs, points.ys, [values[name] for name in self.attributes]
                    ),
                )
            self._memtable.append(ids, points.xs, points.ys, values)
            self._next_id = int(ids[-1]) + 1 if n else self._next_id
            self.stats.inserts += n
            if len(self._memtable) >= self.memtable_capacity:
                self.flush()
            if self._wal is not None:
                self._wal.commit()
            return ids

    def delete(self, ids) -> int:
        """Delete points by insertion id; returns newly recorded deletions.

        Buffered points are dropped in place (they never reach a run);
        flushed points get a tombstone that queries subtract immediately and
        the next compaction involving their run purges physically.  Unknown
        and already-deleted ids are ignored.
        """
        with self._lock:
            ids = np.asarray(ids, dtype=np.int64)
            if self._wal is not None:
                self._wal.append(walog.DELETE, walog.encode_delete(ids))
            newly = self._delete_locked(ids)
            if self._wal is not None:
                self._wal.commit()
            return newly

    def _delete_locked(self, ids: np.ndarray) -> int:
        ids = _sorted_unique(ids)
        ids = ids[(ids >= 0) & (ids < self._next_id)]
        if ids.shape[0] == 0:
            return 0
        local = ids[ids >= self._memtable.first_id]
        remote = ids[ids < self._memtable.first_id]
        newly = self._memtable.delete_local(local)
        if remote.shape[0]:
            # Only ids that still live in some run get a tombstone: an id
            # below the memtable tail that is in no run was already dropped
            # (deleted while buffered, or purged by a compaction), and a
            # phantom tombstone for it would be miscounted as a new deletion
            # and could never be consumed by any merge.
            present = np.zeros(remote.shape[0], dtype=bool)
            for run in self._runs:
                present |= isin_sorted(run.ids, remote)
                if present.all():
                    break
            remote = remote[present]
        if remote.shape[0]:
            before = self._deleted_ids.shape[0]
            # Both inputs are sorted and unique, so the union is one sort of
            # the concatenation plus a neighbour-comparison dedupe — cheaper
            # than np.union1d's generic unique on the ingest hot path.
            self._deleted_ids = _sorted_unique(
                np.concatenate([self._deleted_ids, remote])
            )
            newly += self._deleted_ids.shape[0] - before
        self.stats.deletes += newly
        return newly

    def flush(self) -> "Run | None":
        """Freeze the memtable into a sorted run (no-op when empty).

        With ``auto_compact`` on, the compaction policy runs afterwards —
        bounded to one merge / a byte budget per flush when
        ``incremental_compaction`` / ``compaction_budget_bytes`` is set.
        An actual flush (non-empty memtable) invalidates the attached index
        registry.  With a WAL attached, the flush record is logged first
        and the segment rotates afterwards, so a segment never spans a run
        boundary.
        """
        with self._lock:
            if self._wal is not None:
                self._wal.append(walog.FLUSH, b"")
            run = self._flush_locked()
            if self._wal is not None:
                self._wal.commit()
                self._wal.rotate()
            return run

    def _flush_locked(self) -> "Run | None":
        """The flush itself, WAL-free (shared by the public path and replay)."""
        ids, xs, ys, values = self._memtable.live_arrays()
        self._memtable.clear(next_first_id=self._next_id)
        run = None
        if ids.shape[0]:
            with trace.timed("store.flush", entries=int(ids.shape[0])) as flush_span:
                run = Run.build(self.frame, self.level, ids, xs, ys, values)
                self._runs = self._runs + [run]
            self.stats.flushes += 1
            self.stats.flushed_entries += len(run)
            self.stats.flush_seconds += flush_span.seconds
            _log.info(
                "store flush: entries=%d runs=%d seconds=%.6f",
                len(run), len(self._runs), flush_span.seconds,
            )
            self._invalidate_registry()
        if self.auto_compact:
            max_merges, byte_budget = self._auto_compact_limits()
            self._compact_locked(False, max_merges, byte_budget)
        else:
            self.stats.compaction_debt_bytes = self._debt_locked()
        return run

    def _auto_compact_limits(self) -> "tuple[int | None, int | None]":
        if self.compaction_budget_bytes is not None:
            return None, self.compaction_budget_bytes
        if self.incremental_compaction:
            return 1, None
        return None, None

    def compact(
        self,
        full: bool = False,
        max_merges: int | None = None,
        byte_budget: int | None = None,
    ) -> int:
        """Merge runs per the size-tiered policy; returns merges performed.

        ``full`` consolidates everything into a single run regardless of the
        policy (and purges every tombstone).  ``max_merges`` /
        ``byte_budget`` bound one incremental pass: stop after that many
        merges, or before a merge that would push the pass's cumulative
        input bytes past the budget (the first merge always runs).  Merging
        feeds the surviving entries back through :meth:`Run.build`, so the
        consolidated arrays are bit-identical to a from-scratch build over
        the same live points — bounded passes change *when* merges happen,
        never what queries answer.
        """
        with self._lock:
            if self._wal is not None:
                self._wal.append(
                    walog.COMPACT, walog.encode_compact(full, max_merges, byte_budget)
                )
            merges = self._compact_locked(full, max_merges, byte_budget)
            if self._wal is not None:
                self._wal.commit()
            return merges

    def _compact_locked(
        self,
        full: bool,
        max_merges: int | None = None,
        byte_budget: int | None = None,
    ) -> int:
        with trace.timed("store.compact", full=full) as compact_span:
            merges = self._compact_loop(full, max_merges, byte_budget)
            self.stats.compaction_debt_bytes = self._debt_locked()
            compact_span.annotate(
                merges=merges, debt_bytes=self.stats.compaction_debt_bytes
            )
        if merges:
            self.stats.compaction_seconds += compact_span.seconds
            _log.info(
                "store compaction: merges=%d runs=%d tombstones=%d debt=%d seconds=%.6f",
                merges, len(self._runs), int(self._deleted_ids.shape[0]),
                self.stats.compaction_debt_bytes, compact_span.seconds,
            )
        return merges

    def _compact_loop(
        self, full: bool, max_merges: int | None, byte_budget: int | None
    ) -> int:
        merges = 0
        spent = 0
        while True:
            if max_merges is not None and merges >= max_merges:
                break
            if full:
                if len(self._runs) > 1:
                    positions = list(range(len(self._runs)))
                elif len(self._runs) == 1 and self._deleted_ids.shape[0]:
                    # A lone run still gets rewritten when tombstones point
                    # into it — full compaction guarantees a dead-entry-free
                    # store.
                    positions = [0]
                else:
                    positions = None
                full = False  # one full pass, then stop
            else:
                positions = self.compaction.select(self._runs)
            if positions is None:
                break
            cost = sum(self._runs[pos].memory_bytes() for pos in positions)
            if byte_budget is not None and merges and spent + cost > byte_budget:
                break
            merges += 1
            spent += cost
            self._merge_runs(positions)
        if merges:
            self._invalidate_registry()
        return merges

    def compaction_debt(self) -> int:
        """Bytes of runs the policy would still merge if run to completion.

        Zero for a policy-stable store; incremental compaction drains it
        one bounded pass per flush.  (Also kept fresh on
        ``stats.compaction_debt_bytes`` after every flush/compaction.)
        """
        with self._lock:
            return self._debt_locked()

    def _debt_locked(self) -> int:
        # Simulate the policy to stability over (entry count, byte) pairs —
        # no arrays are touched, so this is O(merges * runs) bookkeeping.
        sizes = [len(run) for run in self._runs]
        nbytes = [run.memory_bytes() for run in self._runs]
        debt = 0
        while True:
            positions = self.compaction.select_sizes(sizes)
            if positions is None:
                return debt
            chosen = set(positions)
            debt += sum(nbytes[pos] for pos in positions)
            merged_size = sum(sizes[pos] for pos in positions)
            merged_bytes = sum(nbytes[pos] for pos in positions)
            sizes = [s for pos, s in enumerate(sizes) if pos not in chosen] + [merged_size]
            nbytes = [b for pos, b in enumerate(nbytes) if pos not in chosen] + [merged_bytes]

    def _merge_runs(self, positions: "list[int]") -> None:
        # Merge in ascending first-id order: when the inputs' id ranges do
        # not interleave (the common case — consecutive flushes), the
        # concatenated rows are already id-sorted and Run.build skips its
        # canonicalising argsort entirely.
        chosen = sorted(
            (self._runs[pos] for pos in positions),
            key=lambda run: int(run.ids[0]) if len(run) else -1,
        )
        masks = [run.live_mask(self._deleted_ids) for run in chosen]
        merged = Run.merge(chosen, masks)

        # Tombstones pointing into the merged runs are now physically purged
        # (an id lives in exactly one segment, so they cannot match anywhere
        # else); drop them from the global set.
        consumed = np.concatenate(
            [run.ids[~mask] for run, mask in zip(chosen, masks)]
            or [np.empty(0, dtype=np.int64)]
        )
        if consumed.shape[0]:
            consumed.sort()
            self._deleted_ids = self._deleted_ids[
                ~isin_sorted(consumed, self._deleted_ids)
            ]
            self.stats.purged_tombstones += int(consumed.shape[0])

        position_set = set(positions)
        new_runs = [run for pos, run in enumerate(self._runs) if pos not in position_set]
        if len(merged):
            # A merge whose inputs were entirely tombstoned produces nothing;
            # keeping a zero-length run would misreport num_runs and make
            # every snapshot iterate a dead segment.
            new_runs.insert(min(positions), merged)
        self._runs = new_runs
        self.stats.compactions += 1
        self.stats.compacted_entries += sum(len(run) for run in chosen)

    # ------------------------------------------------------------------ #
    # index registry
    # ------------------------------------------------------------------ #
    @property
    def registry(self):
        """The attached :class:`~repro.api.registry.IndexRegistry` (lazy).

        Snapshots cache the polygon index of their ACT joins here, so a
        serving workload builds it once per store state instead of once per
        query; flush and compaction invalidate it.
        """
        if self._registry is None:
            # Imported lazily: repro.api imports the store (for the
            # facade's isinstance dispatch), so a module-level import here
            # would be circular.
            from repro.api.registry import IndexRegistry

            self._registry = IndexRegistry()
        return self._registry

    def attach_registry(self, registry) -> None:
        """Share an external registry (e.g. a dataset's) with this store."""
        self._registry = registry

    def _invalidate_registry(self) -> None:
        # Flush/compaction change the *point* state only — polygon-suite
        # indexes (ACT, shape index) are functions of the regions and frame
        # alone, so only point-scoped registry entries are dropped.
        if self._registry is not None:
            self._registry.invalidate(scope="points")

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def snapshot(self) -> StoreSnapshot:
        """A stable read view of the current state.

        Runs and the tombstone array are immutable and captured by
        reference; the memtable tail is consolidated into fresh arrays.  The
        snapshot keeps answering from this exact state no matter how much
        the store ingests, flushes or compacts afterwards.
        """
        with self._lock:
            mem_ids, mem_xs, mem_ys, mem_values = self._memtable.live_arrays()
            return StoreSnapshot(
                self.frame,
                self.level,
                tuple(self._runs),
                self._deleted_ids,
                mem_ids,
                mem_xs,
                mem_ys,
                mem_values,
                registry=self.registry,
            )

    # Convenience: run each query path against a fresh snapshot.
    def count_in_ranges(self, ranges, engine=None) -> int:
        return self.snapshot().count_in_ranges(ranges, engine=engine)

    def raster_count(self, region, cells_per_polygon, **kwargs) -> int:
        return self.snapshot().raster_count(region, cells_per_polygon, **kwargs)

    def act_join(self, regions, **kwargs):
        return self.snapshot().act_join(regions, **kwargs)

    def estimate_count_range(self, region, epsilon):
        return self.snapshot().estimate_count_range(region, epsilon)

    def live_points(self) -> PointSet:
        return self.snapshot().live_points()

    def rebuilt(self, **kwargs) -> "SpatialStore":
        """A from-scratch store over the current live point set (the oracle)."""
        return SpatialStore.from_points(
            self.live_points(), self.frame, self.level, **kwargs
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    #: Manifest schema version written by :meth:`save`.
    MANIFEST_VERSION = 1

    def save(self, directory=None) -> Path:
        """Checkpoint the store into ``directory``; returns the path.

        The memtable is flushed first, so the persisted state is exactly
        runs + tombstones: every run goes to one ``.npz`` file (the
        :meth:`Run.save` round trip) and a JSON manifest records the run
        list, the frame, the next insertion id, the tombstone ids and the
        store configuration.

        The layout is crash-safe: run files carry a per-checkpoint
        generation prefix and are individually fsynced; the manifest is
        written to a tmp file, fsynced, swapped in with ``os.replace`` and
        the parent directory fsynced on both sides of the swap — only then
        is the checkpoint durable.  A crash mid-save leaves the previous
        manifest pointing at its own intact generation; orphaned run files
        of the aborted generation are garbage-collected by the next
        :meth:`open` (and the next successful save).

        A durable store (one with a WAL) defaults ``directory`` to its own
        root and, once the new manifest is durable, truncates the log and
        advances the WAL epoch — the record of everything the checkpoint
        now contains.  Saving a durable store *elsewhere* writes a plain
        checkpoint copy and leaves the WAL untouched.
        """
        with self._lock:
            if directory is None:
                if self._directory is None:
                    raise StoreError("save() needs a directory for a non-durable store")
                directory = self._directory
            directory = Path(directory)
            truncate_wal = self._wal is not None and directory == self._directory
            self.flush()
            directory.mkdir(parents=True, exist_ok=True)
            manifest_path = directory / "manifest.json"
            generation = 0
            if manifest_path.exists():
                try:
                    generation = (
                        int(json.loads(manifest_path.read_text()).get("generation", 0)) + 1
                    )
                except (ValueError, json.JSONDecodeError):
                    generation = 1

            run_files = []
            for pos, run in enumerate(self._runs):
                name = f"gen{generation:05d}_run{pos:05d}.npz"
                run.save(directory / name)
                faults.fsync_path(directory / name)
                run_files.append(name)
            manifest = {
                "format_version": self.MANIFEST_VERSION,
                "generation": generation,
                "level": self.level,
                "attributes": list(self.attributes),
                "next_id": int(self._next_id),
                "frame": {
                    "origin_x": float(self.frame.origin_x),
                    "origin_y": float(self.frame.origin_y),
                    "size": float(self.frame.size),
                },
                "memtable_capacity": self.memtable_capacity,
                "auto_compact": self.auto_compact,
                "incremental_compaction": self.incremental_compaction,
                "compaction_budget_bytes": self.compaction_budget_bytes,
                "compaction": {
                    "min_runs": self.compaction.min_runs,
                    "tier_base": self.compaction.tier_base,
                },
                "runs": run_files,
                "tombstones": [int(i) for i in self._deleted_ids],
                # The WAL epoch whose records post-date this checkpoint.
                # Replay filters segments by it, so an older epoch's
                # stragglers (or a checkpoint that never became durable)
                # can never double-apply.
                "wal_epoch": self._wal.epoch + 1 if truncate_wal else 0,
            }
            tmp_path = directory / "manifest.json.tmp"
            with open(tmp_path, "w") as handle:
                handle.write(json.dumps(manifest, indent=2))
                handle.flush()
                faults.fsync_fileno(handle.fileno())
            faults.fsync_dir(directory)
            faults.replace(tmp_path, manifest_path)
            faults.fsync_dir(directory)

            # The new manifest is durable: drop the log it subsumes and
            # prune run files of previous generations.
            if truncate_wal:
                self._wal.truncate()
            keep = set(run_files)
            for stale in directory.glob("gen*_run*.npz"):
                if stale.name not in keep:
                    stale.unlink()
            return directory

    @classmethod
    def open(
        cls,
        directory,
        registry=None,
        durable: bool | None = None,
        sync: bool = True,
        _replay_limit=None,
    ) -> "SpatialStore":
        """Restore a store checkpointed with :meth:`save`.

        Runs come back bit-identical (the ``.npz`` round trip), insertion
        ids continue after the persisted ``next_id``, and tombstones are
        restored.  When the directory has a write-ahead log (or
        ``durable=True`` asks for one), every logged mutation since the
        checkpoint is replayed through the same code paths that produced
        it — the recovered store, memtable included, answers every query
        exactly like the pre-crash one — and the WAL stays attached for
        further mutations.  ``_replay_limit`` is the sharded commit-log cut
        (see :class:`~repro.durable.wal.CommitLog`).  Lifetime ``stats``
        counters restart at zero — they describe a process, not the data.
        """
        directory = Path(directory)
        manifest_path = directory / "manifest.json"
        if not manifest_path.exists():
            raise StoreError(f"no store manifest in {directory}")
        manifest = json.loads(manifest_path.read_text())
        version = int(manifest.get("format_version", -1))
        if version != cls.MANIFEST_VERSION:
            raise StoreError(
                f"unsupported store manifest version {version} "
                f"(this build reads version {cls.MANIFEST_VERSION})"
            )
        frame = GridFrame.from_raw(
            manifest["frame"]["origin_x"],
            manifest["frame"]["origin_y"],
            manifest["frame"]["size"],
        )
        compaction = SizeTieredCompaction(
            min_runs=int(manifest["compaction"]["min_runs"]),
            tier_base=float(manifest["compaction"]["tier_base"]),
        )
        store = cls(
            frame,
            int(manifest["level"]),
            attributes=tuple(manifest["attributes"]),
            memtable_capacity=int(manifest["memtable_capacity"]),
            compaction=compaction,
            auto_compact=bool(manifest["auto_compact"]),
            incremental_compaction=bool(manifest.get("incremental_compaction", False)),
            compaction_budget_bytes=manifest.get("compaction_budget_bytes"),
            registry=registry,
        )
        store._directory = directory
        # A crashed save can leave run files of an aborted generation (and
        # a stale manifest tmp) behind; the manifest names everything that
        # is live, so the rest is garbage.
        keep = set(manifest["runs"])
        for stale in directory.glob("gen*_run*.npz"):
            if stale.name not in keep:
                _log.info("pruning orphaned run file from a crashed save: %s", stale.name)
                stale.unlink()
        stale_tmp = directory / "manifest.json.tmp"
        if stale_tmp.exists():
            stale_tmp.unlink()
        store._runs = [Run.load(directory / name) for name in manifest["runs"]]
        store._deleted_ids = np.asarray(manifest["tombstones"], dtype=np.int64)
        store._next_id = int(manifest["next_id"])
        store._memtable.clear(next_first_id=store._next_id)

        wal_dir = directory / "wal"
        if durable is None:
            durable = wal_dir.exists()
        if durable:
            with trace.timed("store.recover") as recover_span:
                wal, scan = walog.WriteAheadLog.open(
                    wal_dir,
                    epoch=int(manifest.get("wal_epoch", 0)),
                    sync=sync,
                    limit=_replay_limit,
                )
                report = store._replay(scan)
            report.seconds = recover_span.seconds
            recover_span.annotate(records=report.records, torn=report.torn)
            store._wal = wal
            store.last_recovery = report
            if report.records:
                _log.info(
                    "store recovery: records=%d inserts=%d deletes=%d flushes=%d "
                    "torn=%d rolled_back=%d seconds=%.6f",
                    report.records, report.inserts, report.deletes, report.flushes,
                    report.torn, report.rolled_back, report.seconds,
                )
        return store

    def _replay(self, scan: "walog.WalScan") -> "walog.RecoveryReport":
        """Re-apply logged mutations through the WAL-free internal paths.

        Inserts land in the memtable with their original explicit ids and
        **no** capacity check — flush boundaries come from the logged FLUSH
        records (capacity-triggered flushes logged one too), so the replay
        reproduces the exact run layout, memtable tail and tombstone set of
        the pre-crash store.
        """
        report = walog.RecoveryReport(
            segments=scan.segments, torn=scan.torn, rolled_back=scan.rolled_back
        )
        for rtype, payload in scan.records:
            report.records += 1
            if rtype == walog.INSERT:
                ids, xs, ys, columns = walog.decode_insert(payload)
                if len(columns) != len(self.attributes):
                    raise WalError(
                        f"insert record carries {len(columns)} attribute columns; "
                        f"the store schema has {len(self.attributes)}"
                    )
                values = dict(zip(self.attributes, columns))
                self._memtable.append(ids, xs, ys, values)
                if ids.shape[0]:
                    self._next_id = int(ids[-1]) + 1
                self.stats.inserts += int(ids.shape[0])
                report.inserts += 1
                report.inserted_points += int(ids.shape[0])
            elif rtype == walog.DELETE:
                self._delete_locked(walog.decode_delete(payload))
                report.deletes += 1
            elif rtype == walog.FLUSH:
                self._flush_locked()
                report.flushes += 1
            elif rtype == walog.COMPACT:
                full, max_merges, byte_budget = walog.decode_compact(payload)
                self._compact_locked(full, max_merges, byte_budget)
                report.compactions += 1
            else:
                raise WalError(f"unexpected record type {rtype} in a store WAL")
        return report

    def close(self) -> None:
        """Flush the WAL to disk and release its file handle (if attached)."""
        with self._lock:
            if self._wal is not None:
                self._wal.close()

    @property
    def wal(self) -> "walog.WriteAheadLog | None":
        """The attached write-ahead log (``None`` for a non-durable store)."""
        return self._wal

    @property
    def directory(self) -> "Path | None":
        return self._directory

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_live(self) -> int:
        with self._lock:
            total = self._memtable.num_live
            for run in self._runs:
                total += int(np.count_nonzero(run.live_mask(self._deleted_ids)))
            return total

    @property
    def num_runs(self) -> int:
        return len(self._runs)

    @property
    def num_tombstones(self) -> int:
        return int(self._deleted_ids.shape[0])

    @property
    def memtable_size(self) -> int:
        return len(self._memtable)

    def memory_bytes(self) -> int:
        total = self._memtable.memory_bytes() + int(self._deleted_ids.nbytes)
        for run in self._runs:
            total += run.memory_bytes()
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SpatialStore(live={self.num_live}, runs={self.num_runs}, "
            f"memtable={self.memtable_size}, tombstones={self.num_tombstones})"
        )
