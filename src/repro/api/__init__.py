"""Public query facade: datasets, engine configuration, index lifecycle.

This package is the recommended entry point for applications.  One
:class:`SpatialDataset` session owns the grid frame, a point source (static
point set or live updatable store), named polygon suites, an
:class:`EngineConfig` with the default execution backends, and an
:class:`IndexRegistry` caching the polygon indexes; ``dataset.query(spec)``
plans the declarative :class:`~repro.query.spec.AggregationQuery` with the
cost-based optimizer and executes the chosen plan on the vectorized kernels —
bit-identical to calling the kernels directly.

The free functions in :mod:`repro.query` remain available as the underlying
execution kernels.
"""

from repro.api.config import EngineConfig
from repro.api.dataset import DatasetResult, PolygonSuite, SpatialDataset
from repro.api.fingerprint import (
    SuiteDelta,
    diff_suites,
    entry_fingerprints,
    region_fingerprint,
)
from repro.api.registry import IndexRegistry, RegistryStats, suite_fingerprint

__all__ = [
    "DatasetResult",
    "EngineConfig",
    "IndexRegistry",
    "PolygonSuite",
    "RegistryStats",
    "SpatialDataset",
    "SuiteDelta",
    "diff_suites",
    "entry_fingerprints",
    "region_fingerprint",
    "suite_fingerprint",
]
