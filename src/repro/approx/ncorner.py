"""Minimum bounding n-corner (n-C) approximation.

The n-corner of Brinkhoff et al. approximates an object by a convex polygon
with at most ``n`` vertices.  The implementation here simplifies the convex
hull greedily: while the hull has more than ``n`` vertices, the vertex whose
removal adds the least area is replaced by the intersection of its
neighbouring edges (so the result still encloses the hull, i.e. it remains a
conservative approximation).
"""

from __future__ import annotations

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.errors import ApproximationError
from repro.geometry.bbox import BoundingBox
from repro.geometry.convex_hull import convex_hull
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.predicates import point_in_polygon, points_in_polygon

__all__ = ["NCornerApproximation"]


def _edge_intersection(p1, p2, p3, p4) -> np.ndarray | None:
    """Intersection point of infinite lines (p1, p2) and (p3, p4)."""
    d1 = p2 - p1
    d2 = p4 - p3
    denom = d1[0] * d2[1] - d1[1] * d2[0]
    if abs(denom) < 1e-12:
        return None
    t = ((p3[0] - p1[0]) * d2[1] - (p3[1] - p1[1]) * d2[0]) / denom
    return p1 + t * d1


def _simplify_to_n(hull: np.ndarray, n: int) -> np.ndarray:
    """Reduce a convex hull to at most ``n`` vertices while staying enclosing."""
    current = hull.copy()
    while current.shape[0] > n:
        m = current.shape[0]
        best_idx = -1
        best_extra = np.inf
        best_point = None
        for i in range(m):
            prev2 = current[(i - 2) % m]
            prev1 = current[(i - 1) % m]
            nxt1 = current[(i + 1) % m]
            nxt2 = current[(i + 2) % m]
            # Replace vertex i by the intersection of edges (prev2, prev1) and (nxt1, nxt2)
            # extended; the removed vertex lies inside the new corner.
            inter = _edge_intersection(prev2, prev1, nxt2, nxt1)
            if inter is None:
                continue
            # Extra area of triangle (prev1, inter, nxt1).
            a, b, c = prev1, inter, nxt1
            extra = abs((b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])) / 2.0
            if extra < best_extra:
                best_extra = extra
                best_idx = i
                best_point = inter
        if best_idx < 0:
            break
        prev_idx = (best_idx - 1) % m
        kept = [j for j in range(m) if j != best_idx and j != prev_idx]
        new_pts = []
        for j in range(m):
            if j == prev_idx:
                new_pts.append(best_point)
            elif j == best_idx:
                continue
            else:
                new_pts.append(current[j])
        current = np.asarray(new_pts)
        del kept
    return current


class NCornerApproximation(GeometricApproximation):
    """Convex enclosing polygon with at most ``n`` corners."""

    distance_bounded = False

    __slots__ = ("n", "corners", "_polygon")

    def __init__(self, region: Polygon | MultiPolygon, n: int = 5) -> None:
        if n < 3:
            raise ApproximationError("an n-corner needs at least 3 corners")
        self.n = n
        if isinstance(region, MultiPolygon):
            coords = np.vstack([p.exterior.coords for p in region])
        else:
            coords = region.exterior.coords
        hull = convex_hull(coords)
        self.corners = _simplify_to_n(hull, n) if hull.shape[0] > n else hull
        self._polygon = Polygon(self.corners)

    def covers_point(self, x: float, y: float) -> bool:
        return point_in_polygon(x, y, self._polygon)

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs, ys = as_point_arrays(xs, ys)
        return points_in_polygon(xs, ys, self._polygon)

    def bounds(self) -> BoundingBox:
        return self._polygon.bounds()

    @property
    def num_corners(self) -> int:
        return int(self.corners.shape[0])

    def memory_bytes(self) -> int:
        return int(self.corners.size) * 8

    @property
    def name(self) -> str:
        return f"{self.n}-Corner"
