"""FIG7 — Bounded Raster Join vs. the accurate GPU baseline (Figure 7).

The paper joins 600M taxi points with 260 NYC neighborhood regions on a GTX
1060 and sweeps the distance bound: at 10 m BRJ is about 8.5x faster than the
exact baseline with a median count error of only ~0.15%; at 1 m the required
canvas resolution exceeds what the GPU supports, the join has to tile the
canvas and run multiple aggregation passes, and BRJ becomes slower than the
baseline.

This reproduction runs both joins on the simulated GPU device model
(:mod:`repro.hardware.gpu`), executed through the
:class:`repro.api.SpatialDataset` facade (forced ``brj`` / ``gpu-baseline``
strategies, the simulated device threaded through the plan context).  Two
cost signals are reported:

* wall-clock time of the pure-Python execution (what pytest-benchmark
  measures), and
* the simulated device time, which models per-pixel fill cost, per-test PIP
  cost and per-pass overhead — this is the signal on which the paper's
  crossover is expected to reproduce.
"""

from __future__ import annotations

import pytest

from repro.api import SpatialDataset
from repro.bench import append_run_record, is_smoke_run, print_table, run_record
from repro.hardware import DeviceSpec, SimulatedGPU
from repro.query import exact_join_reference, median_relative_error

#: Distance bounds swept by the paper (metres).
DISTANCE_BOUNDS = (10.0, 5.0, 2.5, 1.0)
#: Simulated device resolution limit; bounds below ~2 m exceed it on the 8 km
#: extent and force multi-pass execution, as on the real GPU.
DEVICE = DeviceSpec(max_texture_size=4096)


@pytest.fixture(scope="module")
def brj_regions(workload):
    """260 neighborhood-like regions, matching the paper's GPU experiment.

    The CI smoke job (``REPRO_BENCH_SMOKE=1``) shrinks the suite so the whole
    figure runs in seconds while still exercising every code path.
    """
    return workload.neighborhoods(count=13 if is_smoke_run() else 260)


@pytest.fixture(scope="module")
def reference(brj_points, brj_regions):
    return exact_join_reference(brj_points, brj_regions)


@pytest.fixture(scope="module")
def brj_dataset(brj_points, brj_regions, frame, workload):
    """Facade session over the fig7 workload (extent matches the paper's)."""
    return SpatialDataset(
        brj_points, frame=frame, extent=workload.extent, suites={"brj": brj_regions}
    )


@pytest.fixture(scope="module")
def baseline_result(brj_dataset):
    gpu = SimulatedGPU(spec=DEVICE)
    return brj_dataset.join("brj", strategy="gpu-baseline", gpu=gpu).result


def test_fig7_gpu_baseline(benchmark, brj_dataset, reference):
    gpu = SimulatedGPU(spec=DEVICE)
    outcome = benchmark.pedantic(
        brj_dataset.join,
        args=("brj",),
        kwargs={"strategy": "gpu-baseline", "gpu": gpu},
        rounds=1,
        iterations=1,
    )
    result = outcome.result
    assert (result.counts == reference.counts).all()
    benchmark.extra_info.update(
        {
            "device_seconds": round(result.device_seconds, 4),
            "pip_tests": result.pip_tests,
            "median_rel_error": 0.0,
        }
    )


@pytest.mark.parametrize("epsilon", DISTANCE_BOUNDS)
def test_fig7_bounded_raster_join(
    benchmark, epsilon, brj_points, brj_dataset, reference, baseline_result
):
    gpu = SimulatedGPU(spec=DEVICE)
    outcome = benchmark.pedantic(
        brj_dataset.join,
        args=("brj",),
        kwargs={"strategy": "brj", "epsilon": epsilon, "gpu": gpu},
        rounds=1,
        iterations=1,
    )
    result = outcome.result
    error = median_relative_error(result.counts, reference.counts)
    speedup_device = baseline_result.device_seconds / max(result.device_seconds, 1e-12)

    print_table(
        ["metric", "value"],
        [
            ["distance bound (m)", epsilon],
            ["canvas resolution", f"{result.resolution[0]} x {result.resolution[1]}"],
            ["aggregation passes", result.num_passes],
            ["median count error", f"{error:.4%}"],
            ["canvas build time (s)", round(result.build_seconds, 4)],
            ["mask/reduce probe time (s)", round(result.probe_seconds, 4)],
            ["device time (s)", round(result.device_seconds, 4)],
            ["baseline device time (s)", round(baseline_result.device_seconds, 4)],
            ["device speedup vs baseline", f"{speedup_device:.2f}x"],
        ],
        title=f"FIG7  Bounded Raster Join at {epsilon} m",
    )
    benchmark.extra_info.update(
        {
            "epsilon": epsilon,
            "passes": result.num_passes,
            "median_rel_error": round(error, 5),
            "build_seconds": round(result.build_seconds, 4),
            "probe_seconds": round(result.probe_seconds, 4),
            "device_seconds": round(result.device_seconds, 4),
            "device_speedup_vs_baseline": round(speedup_device, 2),
        }
    )
    append_run_record(
        run_record(
            "fig7",
            f"brj:eps={epsilon}",
            result.wall_seconds,
            engine="raster",
            num_points=len(brj_points),
            build_seconds=result.build_seconds,
            probe_seconds=result.probe_seconds,
            metrics={
                "device_seconds": result.device_seconds,
                "passes": result.num_passes,
                "median_rel_error": error,
            },
        )
    )

    # Accuracy: the paper reports ~0.15% median error at the 10 m bound.
    assert error < 0.01
    # Shape: at the loosest bound BRJ beats the baseline on device cost.
    # The crossover needs the figure's workload scale; the tiny CI smoke run
    # only checks that every code path executes and stays accurate.
    if epsilon == DISTANCE_BOUNDS[0] and not is_smoke_run():
        assert result.device_seconds < baseline_result.device_seconds
