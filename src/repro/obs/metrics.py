"""Thread-safe counters, gauges and log-bucketed histograms.

The serving layer (and anything else that wants steady-state telemetry
rather than per-call traces) records into a :class:`MetricsRegistry`.
Histograms use geometric buckets — constant *relative* resolution across
the microsecond-to-second latency range — with exact count/sum/min/max so
means are not bucket-quantized; only quantiles are.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic counter (float-valued so it can accumulate seconds/bytes)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_dict(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_dict(self) -> float:
        return self.value


class Histogram:
    """Log-bucketed histogram with exact count/sum/min/max.

    Bucket ``i`` (``i >= 1``) covers ``(base * factor**(i-1), base * factor**i]``;
    bucket 0 covers everything at or below ``base``.  Quantiles walk the
    cumulative bucket counts and report the geometric bucket midpoint,
    clamped to the observed ``[min, max]``.
    """

    __slots__ = ("name", "_lock", "_base", "_factor", "_log_factor",
                 "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, *, base: float = 1e-6, factor: float = 1.6):
        if base <= 0 or factor <= 1:
            raise ValueError("base must be > 0 and factor > 1")
        self.name = name
        self._lock = threading.Lock()
        self._base = base
        self._factor = factor
        self._log_factor = math.log(factor)
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _bucket(self, value: float) -> int:
        if value <= self._base:
            return 0
        return 1 + int(math.log(value / self._base) / self._log_factor)

    def observe(self, value: float) -> None:
        value = float(value)
        index = self._bucket(value) if value > 0 else 0
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 <= q <= 1``) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        with self._lock:
            if not self._count:
                return 0.0
            target = q * self._count
            cumulative = 0
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if cumulative >= target:
                    if index == 0:
                        estimate = self._base
                    else:
                        estimate = self._base * self._factor ** (index - 0.5)
                    return min(max(estimate, self._min), self._max)
            return self._max

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
            low = self._min if self._count else 0.0
            high = self._max if self._count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": low,
            "max": high,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named get-or-create store of counters/gauges/histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Any] = {}

    def _get(self, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        metric = self._get(name, lambda: Counter(name))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, lambda: Gauge(name))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def histogram(self, name: str, *, base: float = 1e-6, factor: float = 1.6) -> Histogram:
        metric = self._get(name, lambda: Histogram(name, base=base, factor=factor))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].as_dict() for name in sorted(metrics)}
