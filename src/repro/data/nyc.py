"""The NYC-like benchmark workload.

All of the paper's experiments run on the NYC taxi points joined with one of
three NYC polygon suites.  This module assembles the synthetic equivalent:

* a metric city extent (a square, in metres, so distance bounds such as
  "4 m" or "10 m" are meaningful),
* taxi-like pickup points with fare / passenger attributes, and
* borough-, neighborhood- and census-like polygon suites with the paper's
  region counts scaled down (configurable) but the vertex-complexity ratios
  preserved.

The default extent is 8 km x 8 km rather than the ~40 km extent of the real
city; this keeps the grid hierarchy shallow enough for pure-Python benchmarks
while leaving the relative behaviour of all competitors unchanged (everything
scales with extent / bound, which is the ratio that matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.points import taxi_like_points
from repro.data.polygons import borough_like_suite, neighborhood_like_suite, tessellation_suite
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import Polygon
from repro.grid.uniform_grid import GridFrame

__all__ = ["NYCWorkload", "DEFAULT_EXTENT"]

#: Default metric extent of the synthetic city (8 km x 8 km).
DEFAULT_EXTENT = BoundingBox(0.0, 0.0, 8_000.0, 8_000.0)


@dataclass(frozen=True)
class NYCWorkload:
    """Factory for the synthetic NYC-like data sets used across benchmarks.

    Attributes
    ----------
    extent:
        The city extent in metres.
    seed:
        Master seed; every generated data set derives its own stream from it,
        so two workloads with the same seed produce identical data.
    """

    extent: BoundingBox = field(default=DEFAULT_EXTENT)
    seed: int = 42

    # ------------------------------------------------------------------ #
    # point data
    # ------------------------------------------------------------------ #
    def taxi_points(self, n: int) -> PointSet:
        """``n`` taxi-like pickup points with fare / passenger attributes."""
        return taxi_like_points(n, self.extent, seed=self.seed)

    # ------------------------------------------------------------------ #
    # polygon suites (counts scaled, complexity ratios preserved)
    # ------------------------------------------------------------------ #
    def boroughs(self, count: int = 5, mean_vertices: float = 663.0) -> list[Polygon]:
        """Borough-like regions: few polygons, very complex boundaries."""
        return borough_like_suite(
            self.extent, count=count, mean_vertices=mean_vertices, seed=self.seed + 1
        )

    def neighborhoods(self, count: int = 64, mean_vertices: float = 30.6) -> list[Polygon]:
        """Neighborhood-like regions: moderate count and complexity.

        The paper uses 289 neighborhoods (and 260 for the GPU join); the
        default here is scaled down to keep pure-Python joins quick, but any
        count can be requested.
        """
        return neighborhood_like_suite(
            self.extent, count=count, mean_vertices=mean_vertices, seed=self.seed + 2
        )

    def census(self, rows: int = 16, cols: int = 16, mean_vertices: float = 13.6) -> list[Polygon]:
        """Census-like regions: many small, simple polygons tiling the extent."""
        return tessellation_suite(
            self.extent, rows=rows, cols=cols, mean_vertices=mean_vertices, seed=self.seed + 3
        )

    # ------------------------------------------------------------------ #
    # shared grid frame
    # ------------------------------------------------------------------ #
    def frame(self) -> GridFrame:
        """The grid hierarchy shared by approximations, indexes and queries.

        The frame covers the extent plus a 10% margin: neighborhood-like
        blobs may poke slightly past the extent boundary (as fuzzy real-world
        region definitions do), and the distance-bound guarantee of raster
        approximations only holds for geometry that lies inside the frame.
        """
        margin = 0.1 * max(self.extent.width, self.extent.height)
        return GridFrame(self.extent.expanded(margin))
