"""Convex hull (Andrew's monotone chain).

The convex hull is one of the classic object approximations studied by
Brinkhoff et al. and referenced by the paper (§2.1).  It is also the starting
point for the rotated MBR and minimum-bounding n-corner approximations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError

__all__ = ["convex_hull"]


def convex_hull(coords: np.ndarray) -> np.ndarray:
    """Return the convex hull of a coordinate array in CCW order.

    Parameters
    ----------
    coords:
        ``(n, 2)`` array of points.

    Returns
    -------
    numpy.ndarray
        ``(h, 2)`` array of hull vertices in counter-clockwise order without
        the closing vertex repeated.  Collinear points on hull edges are
        dropped.

    Raises
    ------
    GeometryError
        If fewer than three non-collinear points are supplied.
    """
    pts = np.asarray(coords, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError("convex hull expects an (n, 2) coordinate array")
    if pts.shape[0] < 3:
        raise GeometryError("convex hull needs at least three points")

    # Sort lexicographically and deduplicate.
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]
    keep = np.ones(pts.shape[0], dtype=bool)
    keep[1:] = np.any(np.diff(pts, axis=0) != 0, axis=1)
    pts = pts[keep]
    if pts.shape[0] < 3:
        raise GeometryError("convex hull needs at least three distinct points")

    def cross(o, a, b) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    hull = np.asarray(lower[:-1] + upper[:-1], dtype=np.float64)
    if hull.shape[0] < 3:
        raise GeometryError("points are collinear; hull is degenerate")
    return hull
