"""Cached polygon-index lifecycle management.

Every approximate query over a polygon suite needs the same expensive
artefact: a distance-bounded index (ACT / FlatACT) or a coarse covering
(ShapeIndex) over the suite.  The free-function kernels rebuild it per call
unless the caller threads a prebuilt instance by hand; the
:class:`IndexRegistry` centralises that lifecycle instead:

* indexes are cached per ``(suite fingerprint, frame, parameters, build
  engine)`` — the fingerprint is a content hash of the suite's ring
  coordinates, so two structurally identical suites share an entry while any
  geometry change misses;
* hit / miss / invalidation counters are kept per registry, so serving
  layers (and the benchmarks) can report cache effectiveness;
* :meth:`invalidate` drops entries wholesale or per suite — the updatable
  store calls it on flush / compaction so a registry shared between ad-hoc
  queries and store snapshots never serves an index the store no longer
  vouches for.

The registry is deliberately *not* a global: a :class:`repro.api.SpatialDataset`
owns one (or shares one with its backing :class:`~repro.store.store.SpatialStore`),
and tests construct throwaway instances.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.approx.build_engine import BuildEngine, get_build_engine
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import GridFrame

__all__ = ["IndexRegistry", "RegistryStats", "suite_fingerprint"]

Region = Polygon | MultiPolygon


def _ring_arrays(region: Region):
    """Iterate over every ring coordinate array of a region."""
    polygons = region.polygons if isinstance(region, MultiPolygon) else (region,)
    for polygon in polygons:
        for ring in polygon.rings():
            yield ring.coords


def suite_fingerprint(regions: "list[Region] | tuple[Region, ...]") -> str:
    """Content hash of a polygon suite (order-sensitive, geometry-exact).

    Hashes every ring's float64 coordinate bytes plus structural separators,
    so the fingerprint changes whenever any vertex, ring, part, or the suite
    order changes — and only then.  Two suites built independently from the
    same coordinates therefore share cached indexes.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(len(regions).to_bytes(8, "little"))
    for region in regions:
        digest.update(b"R")
        for coords in _ring_arrays(region):
            digest.update(b"r")
            digest.update(coords.tobytes())
    return digest.hexdigest()


@dataclass(slots=True)
class RegistryStats:
    """Lifetime counters of one registry."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: Seconds spent building cache entries (misses only).
    build_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "build_seconds": self.build_seconds,
        }


@dataclass(slots=True)
class _Entry:
    index: Any
    fingerprint: str
    #: What the cached index is a function of.  ``"suite"`` entries depend
    #: only on the polygon suite + frame + parameters; ``"points"`` entries
    #: (e.g. per-shard point linearizations) also depend on the point state
    #: and are the only ones a store flush / compaction must drop.
    scope: str = "suite"


@dataclass(slots=True)
class IndexRegistry:
    """Cache of probe-ready polygon indexes keyed on suite content.

    The cached objects are exactly what the build engines produce
    (:class:`~repro.index.act.AdaptiveCellTrie` or
    :class:`~repro.index.flat_act.FlatACT` for ACT entries,
    :class:`~repro.index.shape_index.ShapeIndex` for covering entries), so a
    hit is indistinguishable — bit for bit — from threading a prebuilt index
    into the kernel by hand.
    """

    stats: RegistryStats = field(default_factory=RegistryStats)
    _entries: dict[tuple, _Entry] = field(default_factory=dict)
    #: Serialises cache access: a store flush may invalidate point-scoped
    #: entries from a writer thread while serving threads fetch indexes.
    #: Misses build under the lock, so concurrent misses on one key build
    #: the index exactly once.
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def act_index(
        self,
        regions: "list[Region]",
        frame: GridFrame,
        epsilon: float,
        build_engine: "str | BuildEngine | None" = None,
        conservative: bool = True,
        fingerprint: "str | None" = None,
    ):
        """Probe-ready ACT index over the suite (cached per content + params)."""
        builder = get_build_engine(build_engine)
        fingerprint = fingerprint or suite_fingerprint(regions)
        key = self._key("act", fingerprint, frame, builder, (float(epsilon), conservative))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                index = self._timed(
                    lambda: builder.load_act(
                        regions, frame, epsilon=epsilon, conservative=conservative
                    )
                )
                entry = _Entry(index, fingerprint)
                self._entries[key] = entry
            else:
                self.stats.hits += 1
            return entry.index

    def shape_index(
        self,
        regions: "list[Region]",
        frame: GridFrame,
        max_cells_per_shape: int = 32,
        build_engine: "str | BuildEngine | None" = None,
        fingerprint: "str | None" = None,
    ):
        """Coarse-covering ShapeIndex over the suite (cached, see :meth:`act_index`)."""
        from repro.index.shape_index import ShapeIndex

        builder = get_build_engine(build_engine)
        fingerprint = fingerprint or suite_fingerprint(regions)
        key = self._key("shape", fingerprint, frame, builder, (int(max_cells_per_shape),))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                index = self._timed(
                    lambda: ShapeIndex(
                        regions,
                        frame,
                        max_cells_per_shape=max_cells_per_shape,
                        build_engine=builder,
                    )
                )
                entry = _Entry(index, fingerprint)
                self._entries[key] = entry
            else:
                self.stats.hits += 1
            return entry.index

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def invalidate(self, fingerprint: "str | None" = None, scope: "str | None" = None) -> int:
        """Drop cached entries; returns how many were dropped.

        With ``fingerprint`` only that suite's entries go; with ``scope``
        only entries of that scope.  The updatable store passes
        ``scope="points"`` on flush / compaction: polygon-suite indexes are
        functions of the regions and frame alone, so they survive point
        mutations — a serving workload keeps its ACT cache across the whole
        ingest stream.  With neither argument the whole cache is cleared.
        Counted once per call in ``stats.invalidations``.
        """
        with self._lock:
            if fingerprint is None and scope is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                keys = [
                    key
                    for key, entry in self._entries.items()
                    if (fingerprint is None or entry.fingerprint == fingerprint)
                    and (scope is None or entry.scope == scope)
                ]
                for key in keys:
                    del self._entries[key]
                dropped = len(keys)
            self.stats.invalidations += 1
            return dropped

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Footprint of every cached index."""
        with self._lock:
            return sum(int(entry.index.memory_bytes()) for entry in self._entries.values())

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(kind: str, fingerprint: str, frame: GridFrame, builder: BuildEngine, params: tuple):
        frame_key = (float(frame.origin_x), float(frame.origin_y), float(frame.size))
        return (kind, fingerprint, frame_key, builder.name, params)

    def _timed(self, build):
        import time

        self.stats.misses += 1
        start = time.perf_counter()
        index = build()
        self.stats.build_seconds += time.perf_counter() - start
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"IndexRegistry(entries={len(self._entries)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )
