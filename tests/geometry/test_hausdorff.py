"""Tests for the Hausdorff-distance helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Polygon,
    boundary_hausdorff,
    directed_hausdorff_points,
    hausdorff_points,
    sample_boundary,
)


class TestDirectedHausdorff:
    def test_identical_sets_zero(self):
        pts = np.array([(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)])
        assert directed_hausdorff_points(pts, pts) == pytest.approx(0.0)

    def test_known_distance(self):
        a = np.array([(0.0, 0.0)])
        b = np.array([(3.0, 4.0), (0.0, 1.0)])
        assert directed_hausdorff_points(a, b) == pytest.approx(1.0)
        assert directed_hausdorff_points(b, a) == pytest.approx(5.0)

    def test_symmetric_hausdorff_is_max_of_directed(self):
        a = np.array([(0.0, 0.0)])
        b = np.array([(3.0, 4.0), (0.0, 1.0)])
        assert hausdorff_points(a, b) == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            directed_hausdorff_points(np.empty((0, 2)), np.array([(0.0, 0.0)]))

    def test_subset_has_zero_directed_distance(self):
        b = np.random.default_rng(0).uniform(0, 10, size=(50, 2))
        a = b[:10]
        assert directed_hausdorff_points(a, b) == pytest.approx(0.0)


class TestBoundarySampling:
    def test_sample_spacing_respected(self, unit_square):
        samples = sample_boundary(unit_square, spacing=1.0)
        assert samples.shape[0] >= 40  # perimeter 48 at spacing 1

    def test_invalid_spacing(self, unit_square):
        with pytest.raises(GeometryError):
            sample_boundary(unit_square, spacing=0.0)

    def test_translated_square_distance(self):
        a = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        b_boundary = sample_boundary(Polygon([(1, 0), (11, 0), (11, 10), (1, 10)]), spacing=0.25)
        dist = boundary_hausdorff(a, b_boundary, spacing=0.25)
        assert dist == pytest.approx(1.0, abs=0.3)
