"""Sorted array with binary search (the "BS" baseline of Figure 4).

The simplest physical representation for linearized point codes: keep the
codes in a sorted numpy array and answer range counts with two binary
searches.  The binary search is implemented explicitly (rather than calling
``numpy.searchsorted``) so that its cost model — ``log2(n)`` key comparisons
per lookup, each touching a random array position — is directly comparable to
the RadixSpline's cost model (radix-table hit plus a bounded local search).
A vectorised bulk path built on ``numpy.searchsorted`` is provided separately
for the joins, where per-lookup instrumentation is not needed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.base import CodeIndex

__all__ = ["SortedCodeArray"]


class SortedCodeArray(CodeIndex):
    """Sorted array of 64-bit codes with explicit binary search."""

    def __init__(self, codes: np.ndarray, assume_sorted: bool = False) -> None:
        super().__init__()
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.ndim != 1:
            raise IndexError_("codes must be a one-dimensional array")
        self.codes = codes if assume_sorted else np.sort(codes)
        #: Permutation that sorts the original input (identity when assume_sorted).
        self.order: np.ndarray | None = None if assume_sorted else np.argsort(codes, kind="stable")

    # ------------------------------------------------------------------ #
    # scalar lookups (instrumented)
    # ------------------------------------------------------------------ #
    def _bisect(self, key: int, right: bool) -> int:
        lo, hi = 0, self.codes.shape[0]
        key = np.uint64(key)
        while lo < hi:
            mid = (lo + hi) // 2
            self.stats.comparisons += 1
            value = self.codes[mid]
            if (value <= key) if right else (value < key):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def lower_bound(self, key: int) -> int:
        return self._bisect(key, right=False)

    def upper_bound(self, key: int) -> int:
        return self._bisect(key, right=True)

    # ------------------------------------------------------------------ #
    # bulk lookups (vectorised, uninstrumented)
    # ------------------------------------------------------------------ #
    def bulk_lower_bound(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised lower bound for many keys."""
        return np.searchsorted(self.codes, np.asarray(keys, dtype=np.uint64), side="left")

    def bulk_count_ranges(self, ranges: np.ndarray) -> int:
        """Total count over an ``(m, 2)`` array of ``[lo, hi)`` ranges.

        Alias of the inherited :meth:`CodeIndex.count_ranges_batch`, which
        runs the fused ``searchsorted`` pair over :meth:`sorted_codes` — kept
        as the historically named bulk entry point of this class.
        """
        return self.count_ranges_batch(ranges)

    def sorted_codes(self) -> np.ndarray:
        """The sorted key array itself — enables the fused batch range count."""
        return self.codes

    def range_positions(self, lo: int, hi: int) -> tuple[int, int]:
        """Array positions ``[start, stop)`` of codes inside ``[lo, hi)``."""
        return self.lower_bound(lo), self.lower_bound(hi)

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return int(self.codes.shape[0])

    def memory_bytes(self) -> int:
        # The sorted key array itself; binary search needs no auxiliary structure.
        return int(self.codes.nbytes)
