"""Hausdorff distance between geometries.

The paper defines an approximation ``g'`` of a geometry ``g`` to be an
``epsilon``-approximation when the Hausdorff distance between the two is at
most ``epsilon`` (§2.2):

    d_H(g, g') = max( max_{p' in g'} min_{p in g} d(p, p'),
                      max_{p in g}  min_{p' in g'} d(p', p) )

For raster approximations the bound can be established analytically from the
cell size (``cell_side = epsilon / sqrt(2)``, see
:mod:`repro.approx.distance_bound`); the functions here provide an empirical
check used by the tests and by EXPERIMENTS.md: geometries are densely sampled
along their boundaries and the directed distances are evaluated on the
samples, which gives a close approximation of the true Hausdorff distance for
the piecewise-linear shapes used in this project.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = [
    "directed_hausdorff_points",
    "hausdorff_points",
    "sample_boundary",
    "boundary_hausdorff",
]


def directed_hausdorff_points(a: np.ndarray, b: np.ndarray) -> float:
    """Directed Hausdorff distance ``h(a, b) = max_{p in a} min_{q in b} d(p, q)``.

    Both arguments are ``(n, 2)`` coordinate arrays.  The computation is
    blocked so that the pairwise distance matrix never exceeds a few million
    entries regardless of the input size.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise GeometryError("cannot compute Hausdorff distance with empty point sets")
    worst = 0.0
    block = max(1, 2_000_000 // max(1, b.shape[0]))
    for start in range(0, a.shape[0], block):
        chunk = a[start : start + block]
        dx = chunk[:, None, 0] - b[None, :, 0]
        dy = chunk[:, None, 1] - b[None, :, 1]
        nearest = np.sqrt(dx * dx + dy * dy).min(axis=1)
        worst = max(worst, float(nearest.max()))
    return worst


def hausdorff_points(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Hausdorff distance between two sampled point sets."""
    return max(directed_hausdorff_points(a, b), directed_hausdorff_points(b, a))


def sample_boundary(region: Polygon | MultiPolygon, spacing: float) -> np.ndarray:
    """Sample points along the boundary of a region at most ``spacing`` apart."""
    if spacing <= 0:
        raise GeometryError("sample spacing must be positive")
    samples: list[tuple[float, float]] = []
    for seg in region.boundary_segments():
        for p in seg.sample(spacing):
            samples.append((p.x, p.y))
    return np.asarray(samples, dtype=np.float64)


def boundary_hausdorff(
    original: Polygon | MultiPolygon,
    approximation_boundary: np.ndarray,
    spacing: float,
) -> float:
    """Hausdorff distance between a region's boundary and an approximation.

    ``approximation_boundary`` is an ``(n, 2)`` sample of the approximation's
    boundary (e.g. the outlines of the boundary cells of a raster
    approximation).  The original boundary is sampled at ``spacing``.
    """
    original_samples = sample_boundary(original, spacing)
    return hausdorff_points(original_samples, approximation_boundary)
