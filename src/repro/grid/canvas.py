"""The rasterized canvas data model.

Section 4 of the paper adapts the GPU-friendly "canvas" data model of
Doraiswamy and Freire to distance-bounded approximate queries: a canvas is a
rasterized image whose pixel size is derived from the distance bound, and all
spatial operators work directly on such canvases.

A :class:`Canvas` couples a :class:`~repro.grid.uniform_grid.UniformGrid` with
one or more named *channels*, each a ``(ny, nx)`` float plane.  On a real GPU
these are the r, g, b, a colour channels of an off-screen framebuffer; here
they are numpy arrays.  Channels hold whatever the query needs: partial COUNT
or SUM aggregates for point canvases, region identifiers for polygon
canvases, or boolean coverage masks.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import CanvasError
from repro.grid.uniform_grid import UniformGrid

__all__ = ["Canvas"]

#: Default channel names, mirroring a GPU framebuffer's colour channels.
DEFAULT_CHANNELS = ("r", "g", "b", "a")


class Canvas:
    """A rasterized canvas: a uniform grid with named value planes.

    Parameters
    ----------
    grid:
        The spatial frame of the canvas.
    channels:
        Mapping from channel name to a ``(ny, nx)`` array.  Missing channels
        can be added later with :meth:`set_channel`.
    """

    __slots__ = ("grid", "_channels")

    def __init__(self, grid: UniformGrid, channels: Mapping[str, np.ndarray] | None = None) -> None:
        self.grid = grid
        self._channels: dict[str, np.ndarray] = {}
        if channels:
            for name, plane in channels.items():
                self.set_channel(name, plane)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, grid: UniformGrid, channel_names: Iterable[str] = ("r",)) -> "Canvas":
        """Canvas with all-zero planes for the given channel names."""
        channels = {name: np.zeros((grid.ny, grid.nx), dtype=np.float64) for name in channel_names}
        return cls(grid, channels)

    # ------------------------------------------------------------------ #
    # channels
    # ------------------------------------------------------------------ #
    @property
    def channel_names(self) -> tuple[str, ...]:
        return tuple(self._channels)

    @property
    def shape(self) -> tuple[int, int]:
        """``(ny, nx)`` pixel shape of the canvas."""
        return (self.grid.ny, self.grid.nx)

    @property
    def num_pixels(self) -> int:
        return self.grid.num_cells

    def channel(self, name: str) -> np.ndarray:
        """Return the plane for channel ``name``.

        Raises
        ------
        CanvasError
            If the channel does not exist.
        """
        try:
            return self._channels[name]
        except KeyError:
            raise CanvasError(f"canvas has no channel {name!r}") from None

    def set_channel(self, name: str, plane: np.ndarray) -> None:
        """Attach (or replace) a channel plane; the shape must match the grid."""
        plane = np.asarray(plane, dtype=np.float64)
        if plane.shape != (self.grid.ny, self.grid.nx):
            raise CanvasError(
                f"channel {name!r} has shape {plane.shape}, expected {(self.grid.ny, self.grid.nx)}"
            )
        self._channels[name] = plane

    def copy(self) -> "Canvas":
        """Deep copy of the canvas (channels are copied)."""
        return Canvas(self.grid, {name: plane.copy() for name, plane in self._channels.items()})

    # ------------------------------------------------------------------ #
    # convenience reductions
    # ------------------------------------------------------------------ #
    def total(self, name: str = "r") -> float:
        """Sum of one channel over all pixels."""
        return float(self.channel(name).sum())

    def nonzero_pixels(self, name: str = "r") -> int:
        """Number of pixels with a non-zero value in ``name``."""
        return int(np.count_nonzero(self.channel(name)))

    def same_frame(self, other: "Canvas") -> bool:
        """True if both canvases share an identical grid frame."""
        a, b = self.grid, other.grid
        return (
            a.nx == b.nx
            and a.ny == b.ny
            and a.extent.as_tuple() == b.extent.as_tuple()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Canvas({self.grid.nx}x{self.grid.ny}, channels={list(self._channels)})"
