"""ABL-CONS — ablation: conservative vs non-conservative rasters (§2.2).

The paper distinguishes conservative raster approximations (every cell that
overlaps the boundary is kept — only false positives possible) from
non-conservative ones (cells with small overlap may be dropped — false
negatives possible).  Both satisfy the same distance bound; they differ in the
*sign* and magnitude of the count error.  This ablation measures both variants
over the neighborhood suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import UniformRasterApproximation
from repro.bench import print_table
from repro.query import exact_count

EPSILON = 10.0


@pytest.fixture(scope="module")
def regions(neighborhoods):
    return neighborhoods[:16]


@pytest.fixture(scope="module")
def exact_counts(regions, taxi_points):
    return np.array([exact_count(region, taxi_points) for region in regions], dtype=float)


@pytest.mark.parametrize("conservative", [True, False], ids=["conservative", "center-rule"])
def test_abl_conservative_counts(benchmark, conservative, taxi_points, regions, exact_counts):
    def run():
        counts = []
        for region in regions:
            approx = UniformRasterApproximation(region, epsilon=EPSILON, conservative=conservative)
            counts.append(int(approx.covers_points(taxi_points.xs, taxi_points.ys).sum()))
        return np.array(counts, dtype=float)

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    signed_errors = (counts - exact_counts) / np.maximum(exact_counts, 1.0)

    print_table(
        ["variant", "mean signed error", "max |error|", "false negatives possible"],
        [
            [
                "conservative" if conservative else "center-rule",
                f"{signed_errors.mean():+.3%}",
                f"{np.abs(signed_errors).max():.3%}",
                "no" if conservative else "yes",
            ]
        ],
        title="ABL-CONS  Error sign of conservative vs non-conservative rasters",
    )
    benchmark.extra_info.update(
        {
            "mean_signed_error": round(float(signed_errors.mean()), 5),
            "max_abs_error": round(float(np.abs(signed_errors).max()), 5),
        }
    )

    if conservative:
        # Conservative approximations can only over-count.
        assert (counts >= exact_counts).all()
    else:
        # The centre rule balances the error around zero.
        assert abs(signed_errors.mean()) <= 0.05
