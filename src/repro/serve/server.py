"""The concurrent serving front end: micro-batched query coalescing.

Every hot path in this reproduction is batch-native — the probe kernels
classify a million points per call — yet a naive server executes queries one
at a time and leaves that throughput on the floor.  :class:`QueryServer`
applies the micro-batching trick of inference servers to the paper's
distance-bounded queries:

1. **Queue** — callers submit requests from any thread and get a
   ``concurrent.futures.Future`` back (wrap it with
   ``asyncio.wrap_future`` to await from an event loop).
2. **Coalesce** — the dispatcher groups *compatible* requests (same kind,
   suite, epsilon, engine config and point filter) within a bounded window:
   at most ``max_batch`` requests, closed early after ``max_wait_ms``.
3. **Kernel** — the batch executes as **one** fused kernel call
   (:mod:`repro.serve.fused`): join batches share a single probe pass over
   the point source, lookup batches concatenate their probe coordinates.
   With ``workers >= 2`` the probe runs on the persistent shared-memory
   process pool (publish-once FlatACT CSR buffers), off the dispatcher.
4. **Scatter** — per-request results are sliced back by request id and the
   futures resolve, each with per-request timing telemetry.

**Isolation.**  On a store-backed dataset every batch pins one
:meth:`~repro.store.store.SpatialStore.snapshot` at dequeue; responses carry
it, and each answer is bit-identical — floats included — to running that
request alone against the pinned snapshot.  Reads therefore never block
streaming ingest, and ingest never smears a response across store states.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, replace

import numpy as np

from repro.approx.build_engine import get_build_engine
from repro.errors import QueryError
from repro.geometry.point import PointSet
from repro.query.engine import get_engine
from repro.query.spec import AggregationQuery
from repro.serve.fused import fused_act_join, fused_lookup
from repro.serve.request import (
    RequestTiming,
    ServeRequest,
    ServeResponse,
    SuiteUpdateAnswer,
)
from repro.shard.exec import get_executor

__all__ = ["QueryServer", "ServerStats"]


@dataclass(slots=True)
class ServerStats:
    """Lifetime serving counters of one :class:`QueryServer`."""

    requests: int = 0
    responses: int = 0
    batches: int = 0
    #: Requests that shared their batch with at least one other request.
    fused_requests: int = 0
    errors: int = 0
    max_batch_requests: int = 0
    kernel_seconds: float = 0.0
    queue_wait_seconds: float = 0.0

    @property
    def mean_batch_requests(self) -> float:
        """Average coalesced batch size (1.0 means no coalescing happened)."""
        return self.responses / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "batches": self.batches,
            "fused_requests": self.fused_requests,
            "errors": self.errors,
            "max_batch_requests": self.max_batch_requests,
            "mean_batch_requests": self.mean_batch_requests,
            "kernel_seconds": self.kernel_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
        }


class QueryServer:
    """Micro-batching request server over one :class:`~repro.api.SpatialDataset`.

    Parameters
    ----------
    dataset:
        The dataset to serve.  Store-backed datasets get snapshot-per-batch
        isolation; static datasets are immutable and need none.
    max_batch:
        Most requests coalesced into one fused kernel call.  ``1`` disables
        coalescing entirely (one-at-a-time serial dispatch — the baseline
        the serving benchmark measures against).
    max_wait_ms:
        Bound on how long the dispatcher holds an open batch waiting for
        more compatible requests, counted from the *first* request's
        arrival.  Requests queued while a batch executes coalesce without
        waiting at all, so under load the effective added latency is far
        below this bound.
    max_batch_points:
        Cap on the concatenated probe points of one point-lookup batch
        (join batches share the dataset's points and are unaffected).
    workers:
        ``0`` probes in the dispatcher thread; ``K >= 2`` probes on the
        persistent shared-memory process pool shared with sharded
        execution (:func:`repro.shard.exec.get_executor`).

    Use as a context manager, or call :meth:`start` / :meth:`close`::

        with dataset.serve(max_batch=32, max_wait_ms=2.0) as server:
            future = server.submit_join("neighborhoods", epsilon=4.0)
            response = future.result()
            print(response.counts, response.explain())
    """

    def __init__(
        self,
        dataset,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_batch_points: int = 1 << 20,
        workers=0,
    ) -> None:
        if max_batch < 1:
            raise QueryError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise QueryError("max_wait_ms must be non-negative")
        self.dataset = dataset
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_ms) / 1e3
        self.max_batch_points = int(max_batch_points)
        self._executor = get_executor(workers)
        self.stats = ServerStats()
        self._queue: deque[ServeRequest] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._thread: "threading.Thread | None" = None
        self._next_request_id = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "QueryServer":
        """Start the dispatcher thread (idempotent); returns ``self``.

        Requests submitted before :meth:`start` stay queued and coalesce
        as soon as the dispatcher runs — the parity tests use this to form
        deterministic batches.
        """
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-query-server", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Drain the queue, resolve every pending future, stop dispatching."""
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()
        if self._thread is not None:
            self._thread.join()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit_join(
        self,
        suite: "str | None" = None,
        *,
        epsilon: "float | None" = None,
        spec: AggregationQuery | None = None,
        **overrides,
    ) -> Future:
        """Queue an ACT aggregation join; returns a future of :class:`ServeResponse`.

        Joins over the same suite, epsilon, engine config and point filter
        coalesce into one shared probe pass — aggregate function and
        attribute may differ freely within a batch.
        """
        spec = spec or AggregationQuery(epsilon=epsilon if epsilon is not None else 4.0)
        if epsilon is not None and spec.epsilon != epsilon:
            spec = replace(spec, epsilon=epsilon)
        if spec.epsilon is None:
            raise QueryError("served joins run the ACT strategy and need an epsilon")
        target = self.dataset._resolve_suite(spec, suite)
        config = self.dataset.config.merged(**overrides)
        key = (
            "join",
            target.name,
            target.fingerprint,
            get_engine(config.engine).name,
            get_build_engine(config.build_engine).name,
            float(spec.epsilon),
            id(spec.point_filter) if spec.point_filter is not None else None,
        )
        return self._enqueue(
            "join", key, target.name, spec, {"config": config, "epsilon": float(spec.epsilon)}
        )

    def submit_lookup(
        self,
        xs,
        ys,
        suite: "str | None" = None,
        *,
        epsilon: float = 4.0,
        **overrides,
    ) -> Future:
        """Queue a point lookup: which suite regions match each ``(x, y)``.

        Compatible lookups concatenate into one probe call; the response's
        :class:`~repro.serve.request.LookupAnswer` slice is bit-identical
        to probing this block alone.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise QueryError("lookup coordinates must be two equal-length 1-D arrays")
        target = self.dataset._resolve_suite(None, suite)
        config = self.dataset.config.merged(**overrides)
        key = (
            "point-lookup",
            target.name,
            target.fingerprint,
            get_engine(config.engine).name,
            get_build_engine(config.build_engine).name,
            float(epsilon),
        )
        return self._enqueue(
            "point-lookup",
            key,
            target.name,
            None,
            {"config": config, "epsilon": float(epsilon), "xs": xs, "ys": ys},
            payload_points=int(xs.shape[0]),
        )

    def submit_raster_count(
        self,
        suite: "str | None" = None,
        *,
        cells_per_polygon: int,
        conservative: bool = True,
        **overrides,
    ) -> Future:
        """Queue a per-region raster count over the code index.

        Identically-parameterised requests coalesce into one computation
        whose counts every request in the batch shares.
        """
        target = self.dataset._resolve_suite(None, suite)
        config = self.dataset.config.merged(**overrides)
        key = (
            "raster-count",
            target.name,
            target.fingerprint,
            get_engine(config.engine).name,
            get_build_engine(config.build_engine).name,
            int(cells_per_polygon),
            bool(conservative),
        )
        return self._enqueue(
            "raster-count",
            key,
            target.name,
            None,
            {
                "config": config,
                "cells_per_polygon": int(cells_per_polygon),
                "conservative": bool(conservative),
            },
        )

    def submit_estimate(
        self,
        suite: "str | None" = None,
        *,
        epsilon: float,
        **overrides,
    ) -> Future:
        """Queue a result-range estimation (certain COUNT intervals per region)."""
        target = self.dataset._resolve_suite(None, suite)
        config = self.dataset.config.merged(**overrides)
        key = ("range-estimate", target.name, target.fingerprint, float(epsilon))
        return self._enqueue(
            "range-estimate",
            key,
            target.name,
            None,
            {"config": config, "epsilon": float(epsilon)},
        )

    def submit_suite_update(self, suite: str, regions) -> Future:
        """Queue a live suite mutation, strictly ordered against queries.

        The new geometry replaces the named suite via the dataset's
        delta-only path (:meth:`~repro.api.SpatialDataset.apply_suite`):
        unchanged polygons are fingerprint-skipped, changed ones are patched
        into every cached index.  The request acts as a **fence** in the
        queue — queries submitted before it are answered against the old
        suite, queries after it against the new one, and the
        fingerprint-carrying coalescing keys guarantee the two sides never
        share a fused batch.  The response's result is a
        :class:`~repro.serve.request.SuiteUpdateAnswer`.
        """
        target = self.dataset.suite(suite)
        # A unique key: mutations never coalesce with anything, including
        # each other — each runs alone, in queue order.
        key = ("suite-update", target.name, object())
        return self._enqueue(
            "suite-update", key, target.name, None, {"regions": list(regions)}
        )

    # Blocking conveniences: submit + wait.
    def update_suite(self, suite: str, regions) -> ServeResponse:
        return self.submit_suite_update(suite, regions).result()

    def join(self, suite=None, **kwargs) -> ServeResponse:
        return self.submit_join(suite, **kwargs).result()

    def lookup(self, xs, ys, suite=None, **kwargs) -> ServeResponse:
        return self.submit_lookup(xs, ys, suite, **kwargs).result()

    def raster_count(self, suite=None, **kwargs) -> ServeResponse:
        return self.submit_raster_count(suite, **kwargs).result()

    def estimate(self, suite=None, **kwargs) -> ServeResponse:
        return self.submit_estimate(suite, **kwargs).result()

    def _enqueue(self, kind, key, suite, spec, params, payload_points=0) -> Future:
        with self._wakeup:
            if self._closed:
                raise QueryError("the query server is closed")
            request = ServeRequest(
                kind=kind,
                key=key,
                suite=suite,
                spec=spec,
                params=params,
                future=Future(),
                request_id=self._next_request_id,
                enqueued=time.perf_counter(),
                payload_points=payload_points,
            )
            self._next_request_id += 1
            self._queue.append(request)
            self.stats.requests += 1
            self._wakeup.notify_all()
            return request.future

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _next_batch(self) -> "list[ServeRequest] | None":
        """Dequeue the head request plus every compatible one in the window."""
        with self._wakeup:
            while not self._queue:
                if self._closed:
                    return None
                self._wakeup.wait()
            head = self._queue.popleft()
            batch = [head]
            if head.kind == "suite-update":
                # Mutations dispatch immediately and alone: no batching
                # window, nothing coalesces with them, and everything queued
                # behind them waits until the patch lands.
                return batch
            payload = head.payload_points
            deadline = head.enqueued + self.max_wait_seconds
            while len(batch) < self.max_batch:
                payload = self._take_compatible(batch, head.key, payload)
                if len(batch) >= self.max_batch or self._closed:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._wakeup.wait(remaining)
            return batch

    def _take_compatible(self, batch, key, payload: int) -> int:
        """Move queued requests matching ``key`` into ``batch`` (order kept)."""
        kept: deque[ServeRequest] = deque()
        while self._queue and len(batch) < self.max_batch:
            request = self._queue.popleft()
            if request.kind == "suite-update":
                # A queued mutation is a fence: nothing submitted behind it
                # may jump ahead of it into this batch, even with a
                # compatible key (its key was computed pre-mutation).
                kept.append(request)
                break
            if (
                request.key == key
                and payload + request.payload_points <= self.max_batch_points
            ):
                batch.append(request)
                payload += request.payload_points
            else:
                kept.append(request)
        kept.extend(self._queue)
        self._queue = kept
        return payload

    def _run_batch(self, batch) -> None:
        dequeued = time.perf_counter()
        store = self.dataset.store
        # Snapshot-per-batch isolation, pinned at dequeue: every request in
        # the batch answers from this exact store state, no matter how much
        # the store ingests, flushes or compacts while the kernel runs.
        snapshot = store.snapshot() if store is not None else None
        try:
            handler = self._HANDLERS[batch[0].kind]
            results, batch_points, kernel_seconds, scatter_seconds = handler(
                self, batch, snapshot
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded to the futures
            self.stats.errors += len(batch)
            self.stats.batches += 1
            for request in batch:
                request.future.set_exception(exc)
            return
        self.stats.batches += 1
        self.stats.responses += len(batch)
        self.stats.kernel_seconds += kernel_seconds
        self.stats.max_batch_requests = max(self.stats.max_batch_requests, len(batch))
        if len(batch) > 1:
            self.stats.fused_requests += len(batch)
        for request, result in zip(batch, results):
            wait = dequeued - request.enqueued
            self.stats.queue_wait_seconds += wait
            request.future.set_result(
                ServeResponse(
                    kind=request.kind,
                    suite=request.suite,
                    request_id=request.request_id,
                    result=result,
                    spec=request.spec,
                    snapshot=snapshot,
                    timing=RequestTiming(
                        queue_wait_seconds=wait,
                        kernel_seconds=kernel_seconds,
                        scatter_seconds=scatter_seconds,
                        batch_requests=len(batch),
                        batch_points=batch_points,
                    ),
                )
            )

    # ------------------------------------------------------------------ #
    # batch handlers (one fused call each)
    # ------------------------------------------------------------------ #
    def _segments(self, snapshot) -> "list[tuple[np.ndarray, PointSet]]":
        """Probe-ready ``(global_ids, points)`` segments of the point source."""
        if snapshot is None:
            points = self.dataset.points()
            return [(np.arange(len(points), dtype=np.int64), points)]
        if hasattr(snapshot, "_segments"):
            return [
                (ids, PointSet(xs, ys, values))
                for ids, xs, ys, values in snapshot._segments()
            ]
        # ShardedSnapshot: global ids make segment order irrelevant to the
        # ascending-id merge, so a flat fan-out keeps bit parity.
        return [
            (seg.ids, PointSet(seg.xs, seg.ys, seg.values))
            for shard in snapshot.segments()
            for seg in shard
        ]

    def _act_index(self, request, snapshot) -> "tuple[object, object]":
        suite = self.dataset.suite(request.suite)
        config = request.params["config"]
        trie = self.dataset.registry.act_index(
            list(suite.regions),
            self.dataset.frame,
            epsilon=request.params["epsilon"],
            build_engine=config.build_engine,
            fingerprint=suite.fingerprint,
        )
        return suite, trie

    def _serve_join(self, batch, snapshot):
        suite, trie = self._act_index(batch[0], snapshot)
        config = batch[0].params["config"]
        start = time.perf_counter()
        answers, probes, probe_seconds = fused_act_join(
            self._segments(snapshot),
            len(suite.regions),
            trie,
            [request.spec for request in batch],
            engine=config.engine,
            executor=self._executor,
        )
        scatter = max(time.perf_counter() - start - probe_seconds, 0.0)
        return answers, probes, probe_seconds, scatter

    def _serve_point_lookup(self, batch, snapshot):
        _, trie = self._act_index(batch[0], snapshot)
        config = batch[0].params["config"]
        start = time.perf_counter()
        answers, probes, probe_seconds = fused_lookup(
            trie,
            [(request.params["xs"], request.params["ys"]) for request in batch],
            engine=config.engine,
            executor=self._executor,
        )
        scatter = max(time.perf_counter() - start - probe_seconds, 0.0)
        return answers, probes, probe_seconds, scatter

    def _serve_raster_count(self, batch, snapshot):
        head = batch[0]
        suite = self.dataset.suite(head.suite)
        config = head.params["config"]
        cells = head.params["cells_per_polygon"]
        conservative = head.params["conservative"]
        start = time.perf_counter()
        if snapshot is None:
            counts = self.dataset.raster_count(
                head.suite,
                cells_per_polygon=cells,
                conservative=conservative,
                engine=config.engine,
                build_engine=config.build_engine,
            )
        else:
            counts = np.array(
                [
                    snapshot.raster_count(
                        region,
                        cells,
                        conservative=conservative,
                        engine=config.engine,
                        build_engine=config.build_engine,
                    )
                    for region in suite.regions
                ],
                dtype=np.int64,
            )
        kernel = time.perf_counter() - start
        # One shared computation answers the whole batch (copies, so no
        # response aliases another's array).
        return [counts.copy() for _ in batch], 0, kernel, 0.0

    def _serve_range_estimate(self, batch, snapshot):
        head = batch[0]
        suite = self.dataset.suite(head.suite)
        epsilon = head.params["epsilon"]
        start = time.perf_counter()
        if snapshot is None:
            estimates = self.dataset.estimate(head.suite, epsilon=epsilon)
        else:
            estimates = [
                snapshot.estimate_count_range(region, epsilon) for region in suite.regions
            ]
        kernel = time.perf_counter() - start
        return [list(estimates) for _ in batch], 0, kernel, 0.0

    def _serve_suite_update(self, batch, snapshot):
        # Singleton by construction (_next_batch dispatches mutations alone);
        # runs in the dispatcher thread, so it is strictly serialised between
        # the batch that preceded it and the one that follows.
        request = batch[0]
        start = time.perf_counter()
        summary = self.dataset.apply_suite(request.suite, request.params["regions"])
        kernel = time.perf_counter() - start
        answer = SuiteUpdateAnswer(
            suite=summary["suite"],
            noop=summary["noop"],
            old_fingerprint=summary["old_fingerprint"],
            new_fingerprint=summary["new_fingerprint"],
            replaced=summary["replaced"],
            added=summary["added"],
            removed=summary["removed"],
            unchanged=summary["unchanged"],
            patched_entries=summary["patched_entries"],
            dropped_entries=summary["dropped_entries"],
        )
        return [answer], 0, kernel, 0.0

    _HANDLERS = {
        "join": _serve_join,
        "point-lookup": _serve_point_lookup,
        "raster-count": _serve_raster_count,
        "range-estimate": _serve_range_estimate,
        "suite-update": _serve_suite_update,
    }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self._closed else ("running" if self._thread else "idle")
        return (
            f"QueryServer(max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait_seconds * 1e3:g}, "
            f"workers={self._executor.workers}, {state})"
        )
