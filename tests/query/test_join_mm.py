"""Tests for the main-memory joins (Figure 6 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import (
    Aggregate,
    AggregationQuery,
    act_approximate_join,
    exact_join_reference,
    median_relative_error,
    rtree_exact_join,
    shape_index_exact_join,
)

EPSILON = 8.0  # metres, on the 1 km test extent


@pytest.fixture(scope="module")
def reference(taxi_points, neighborhoods):
    return exact_join_reference(taxi_points, neighborhoods)


class TestExactJoins:
    def test_rtree_join_matches_reference(self, taxi_points, neighborhoods, reference):
        result = rtree_exact_join(taxi_points, neighborhoods)
        np.testing.assert_array_equal(result.counts, reference.counts)
        assert result.pip_tests > 0

    def test_shape_index_join_matches_reference(self, taxi_points, neighborhoods, workload, reference):
        result = shape_index_exact_join(taxi_points, neighborhoods, workload.frame())
        np.testing.assert_array_equal(result.counts, reference.counts)

    def test_shape_index_needs_fewer_pip_tests_than_rtree(
        self, taxi_points, neighborhoods, workload
    ):
        """The tighter covering reduces refinement work (Figure 6 ordering).

        A very coarse covering (few large cells) can spill past the MBR, so a
        reasonably fine covering is used for the comparison."""
        rtree = rtree_exact_join(taxi_points, neighborhoods)
        shape = shape_index_exact_join(
            taxi_points, neighborhoods, workload.frame(), max_cells_per_shape=128
        )
        assert shape.pip_tests <= rtree.pip_tests


class TestApproximateJoin:
    def test_act_join_needs_no_pip_tests(self, taxi_points, neighborhoods, workload):
        result = act_approximate_join(taxi_points, neighborhoods, workload.frame(), epsilon=EPSILON)
        assert result.pip_tests == 0
        assert result.index_probes == len(taxi_points)

    def test_act_join_close_to_exact(self, taxi_points, neighborhoods, workload, reference):
        result = act_approximate_join(taxi_points, neighborhoods, workload.frame(), epsilon=EPSILON)
        error = median_relative_error(result.counts, reference.counts)
        assert error < 0.05

    def test_tighter_bound_is_more_accurate(self, taxi_points, neighborhoods, workload, reference):
        loose = act_approximate_join(taxi_points, neighborhoods, workload.frame(), epsilon=32.0)
        tight = act_approximate_join(taxi_points, neighborhoods, workload.frame(), epsilon=4.0)
        loose_err = median_relative_error(loose.counts, reference.counts)
        tight_err = median_relative_error(tight.counts, reference.counts)
        assert tight_err <= loose_err

    def test_act_memory_exceeds_exact_indexes(self, taxi_points, neighborhoods, workload):
        """The space-for-precision trade-off of §5.1."""
        act = act_approximate_join(taxi_points, neighborhoods, workload.frame(), epsilon=EPSILON)
        rtree = rtree_exact_join(taxi_points, neighborhoods)
        shape = shape_index_exact_join(taxi_points, neighborhoods, workload.frame())
        assert act.index_memory_bytes > shape.index_memory_bytes > rtree.index_memory_bytes

    def test_prebuilt_trie_reused(self, taxi_points, neighborhoods, workload):
        from repro.index import AdaptiveCellTrie

        trie = AdaptiveCellTrie.build(neighborhoods, workload.frame(), epsilon=EPSILON)
        result = act_approximate_join(
            taxi_points, neighborhoods, workload.frame(), epsilon=EPSILON, trie=trie
        )
        assert result.build_seconds < 0.05  # nothing to build


class TestAggregates:
    def test_sum_aggregate(self, taxi_points, neighborhoods, workload):
        query = AggregationQuery(aggregate=Aggregate.SUM, attribute="fare")
        reference = exact_join_reference(taxi_points, neighborhoods, query=query)
        result = rtree_exact_join(taxi_points, neighborhoods, query=query)
        np.testing.assert_allclose(result.aggregates, reference.aggregates)

    def test_avg_aggregate(self, taxi_points, neighborhoods):
        query = AggregationQuery(aggregate=Aggregate.AVG, attribute="passengers")
        reference = exact_join_reference(taxi_points, neighborhoods, query=query)
        result = rtree_exact_join(taxi_points, neighborhoods, query=query)
        np.testing.assert_allclose(result.aggregates, reference.aggregates)

    def test_point_filter_respected(self, taxi_points, neighborhoods):
        query = AggregationQuery(point_filter=lambda ps: ps.attribute("passengers") >= 2)
        reference = exact_join_reference(taxi_points, neighborhoods, query=query)
        result = rtree_exact_join(taxi_points, neighborhoods, query=query)
        np.testing.assert_array_equal(result.counts, reference.counts)
        assert result.counts.sum() < len(taxi_points)

    def test_total_seconds(self, taxi_points, neighborhoods):
        result = rtree_exact_join(taxi_points, neighborhoods)
        assert result.total_seconds == pytest.approx(result.build_seconds + result.probe_seconds)
